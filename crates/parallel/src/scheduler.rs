//! The parallel MLMCMC process architecture (paper Section 4.2, Fig. 8).
//!
//! Rank layout: rank 0 is the **root** (launches the run, tracks level
//! completion, orchestrates shutdown), rank 1 the **phonebook** (routes
//! coarse-proposal requests to chains holding fresh samples, detects load
//! imbalance from queued requests vs. unclaimed samples, and reassigns
//! chain groups — Section 4.3), ranks `2..2+L+1` are per-level
//! **collectors** (streaming moment accumulation of the telescoping
//! terms), and the remaining ranks are **controllers**, each running a
//! level-`l` chain built from the `uq-mlmcmc` coupled kernel. Controllers
//! on level `l ≥ 1` draw coarse proposals from level-`l-1` controllers
//! *through the phonebook*; the subsampling rate `ρ_l` is enforced by the
//! serving side (a chain only announces a sample as ready after `ρ_l`
//! further steps).
//!
//! Shutdown is deadlock-free by construction: every blocking receive also
//! matches `Poison`/`Shutdown`, the phonebook poisons queued requests
//! before acknowledging shutdown, and the root only shuts controllers
//! down after the phonebook acknowledged (so no request can be forwarded
//! to an already-exited server without its requester also being woken).

use crate::comm::{RankCtx, Universe};
use crate::obs::{Counter, Hist, SpanKind, Tracer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use uq_mcmc::stats::VectorMoments;
use uq_mcmc::SamplingProblem;
use uq_mlmcmc::counting::{CountingProblem, EvalCounter};
use uq_mlmcmc::coupled::{CoarseAcquire, CoarseProposalSource, CoarseSample, MlChain};
use uq_mlmcmc::ledger::{self, LedgerBook, LedgerLease, LedgerState, PairingMode, ServeOutcome};
use uq_mlmcmc::store::{Backend, ChainCkpt, CollectorCkpt, RunSnapshot, RunStore};
use uq_mlmcmc::LevelFactory;

/// RNG stream seed of the controller at `rank` (shared by the thread
/// scheduler and the cooperative runtime so their chains are
/// stream-identical on identical configs — the cross-backend parity
/// tests reproduce it).
pub fn controller_seed(base: u64, rank: usize) -> u64 {
    base.wrapping_add(rank as u64 * 0x9E37_79B9)
}

/// Messages exchanged between ranks.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Requester → phonebook: need one coarse sample from `level`,
    /// generated from the requester's current rewind `anchor`.
    CoarseRequest {
        level: usize,
        reply_to: usize,
        anchor: Box<CoarseSample>,
    },
    /// Phonebook → serving controller: execute one ledger serve for
    /// `reply_to` (the lease carries the session state and anchor).
    /// `speculative` serves are accept-case precomputations: the result
    /// goes back to the phonebook (inside [`Msg::ServeDone`]) instead of
    /// to `reply_to`, who never asked.
    Serve {
        reply_to: usize,
        lease: Box<LedgerLease>,
        speculative: bool,
    },
    /// Serving controller → requester: the served proposal (its `mate`
    /// field carries the ledger pairing state).
    CoarseSample {
        level: usize,
        sample: Box<CoarseSample>,
    },
    /// Serving controller → phonebook: one batched message concluding a
    /// serve — the ledger write-back, the speculative outcome (when
    /// `speculative`) and the availability re-announce folded together
    /// (PR 4 sent a separate `LedgerUpdate` plus `SampleReady` here).
    /// `session` echoes the lease's session seed so the phonebook can
    /// drop write-backs from dead session generations.
    ServeDone {
        requester: usize,
        level: usize,
        session: u64,
        /// Session stream position after this serve (`lease.serves + 1`).
        serves: u64,
        outcome: Box<ServeOutcome>,
        speculative: bool,
    },
    /// Teardown answer to a request that can no longer be served.
    Poison,
    /// Controller → phonebook: a fresh subsampled state is available.
    SampleReady { level: usize },
    /// Controller → collector: one telescoping-term sample.
    Correction {
        level: usize,
        y: Vec<f64>,
        theta: Vec<f64>,
        fine_qoi: Vec<f64>,
        coarse_qoi: Option<Vec<f64>>,
    },
    /// Collector → root: level target reached.
    LevelDone { level: usize },
    /// Root → controllers (broadcast): stop producing corrections for
    /// `level` (keep serving proposals).
    StopProducing { level: usize },
    /// Phonebook → controller: dynamic load balancing reassignment.
    Reassign { level: usize },
    /// Root → everyone: tear down.
    Shutdown,
    /// Phonebook → root: shutdown acknowledged, no more forwards.
    PhonebookDown,
    /// Phonebook → root at shutdown: routing/batching statistics (sent by
    /// the cooperative runtime's phonebook; the thread scheduler's sends
    /// none and every role ignores it).
    PhonebookReport(Box<crate::roles::PhonebookStats>),
    /// Collector → root at shutdown: accumulated statistics.
    CollectorReport(Box<CollectorData>),
    /// Controller → root at exit: per-level evaluation counts.
    ControllerReport {
        evals: Vec<usize>,
        eval_secs: Vec<f64>,
    },
    /// Top-level collector → root: a checkpoint interval elapsed (sent
    /// every `every` recorded corrections when checkpointing is on).
    CheckpointTick,
    /// Root → controllers, then (once all controllers acked) root →
    /// phonebook: pause own-chain stepping at the next clean boundary
    /// and capture state. Serving continues while paused, so requesters
    /// blocked mid-step still get their proposals and reach their own
    /// clean boundary.
    Checkpoint,
    /// Controller → its level's collector: per-destination-FIFO marker
    /// sent after the controller's last pre-pause [`Msg::Correction`].
    /// Once a collector has one flush per chain on its level, its count
    /// and moments are consistent with every captured chain state.
    CheckpointFlush,
    /// Controller → root: captured chain state for the snapshot.
    ControllerCkpt(Box<ChainCkpt>),
    /// Collector → root: captured accumulator state for the snapshot.
    CollectorCkpt(Box<CollectorCkpt>),
    /// Phonebook → root: the full ledger export, sent only once every
    /// dispatched serve has written back (`in_flight == 0`), so the
    /// export reflects all serve outcomes the captured chains observed.
    LedgerCkpt(Box<LedgerState>),
    /// Root → controllers (broadcast): snapshot persisted, resume
    /// stepping.
    CheckpointDone,
    /// Root → a controller being migrated (net transport): exit this
    /// thread at the held checkpoint barrier instead of resuming. The
    /// rank's state travels in the barrier snapshot; the transport
    /// re-hosts it elsewhere and rewires routes before anyone may send
    /// to it again (see `crate::net`).
    Retire,
}

/// Post-snapshot hook for the parallel backends, called with
/// `(samples_done at the cut, content hash)`.
pub type ParallelSnapshotHook<'a> = dyn Fn(usize, &str) + Sync + 'a;

/// Checkpointing policy for a parallel run: where snapshots go, how the
/// format header is keyed, and how often the top-level collector ticks.
pub struct ParallelCheckpoint<'a> {
    /// Content-addressed store receiving the snapshots.
    pub store: &'a RunStore,
    /// Configuration hash written into every snapshot header (resume
    /// refuses snapshots taken under a different hash).
    pub config_hash: u64,
    /// Checkpoint every `every` top-level corrections (0 disables).
    pub every: usize,
    /// Called after each persisted snapshot with `(samples_done, hash)`
    /// — the crash-injection harness aborts the process from here.
    pub on_snapshot: Option<&'a ParallelSnapshotHook<'a>>,
    /// Cooperative-preemption flag (runtime backend only). When set at
    /// the completion of a quiesce barrier, the run keeps the
    /// just-persisted snapshot as its resume point and drives the normal
    /// graceful shutdown instead of resuming the controllers — the
    /// barrier is fully quiescent (every chain paused at a clean
    /// boundary, ledger drained, nothing in flight), so stopping there
    /// strands no `ServeJob` and the snapshot resumes bit-identically.
    /// Reported via [`crate::RuntimeReport::preempted`]; the thread
    /// scheduler ignores the flag (the always-on service runs on the
    /// runtime backend).
    pub stop: Option<&'a std::sync::atomic::AtomicBool>,
}

/// Transport hooks for elastic membership (used by `crate::net`): at
/// every completed checkpoint barrier the root asks the transport which
/// ranks must retire (`plan`), sends each a [`Msg::Retire`], and blocks
/// in `rehost` until the transport has re-hosted those ranks elsewhere
/// from the just-persisted snapshot and rewired its routes. Only then
/// is `CheckpointDone` broadcast and stepping resumed — the barrier
/// window (every chain paused at a clean boundary, ledger drained, no
/// messages in flight toward controllers) is what makes migration a
/// plain data move.
pub(crate) struct ElasticOps<'a> {
    pub plan: &'a (dyn Fn(&RunSnapshot) -> Vec<usize> + Sync),
    pub rehost: &'a (dyn Fn(&RunSnapshot, &[usize]) + Sync),
}

/// Data a collector ships back to the root.
#[derive(Clone, Debug)]
pub struct CollectorData {
    pub level: usize,
    pub n_samples: usize,
    pub mean: Vec<f64>,
    pub variance: Vec<f64>,
    pub theta_samples: Vec<Vec<f64>>,
    pub correction_pairs: Vec<(Vec<f64>, Vec<f64>)>,
}

/// Configuration of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Target samples per level (`N_l`).
    pub samples_per_level: Vec<usize>,
    /// Burn-in steps per chain.
    pub burn_in: Vec<usize>,
    /// Initial number of chain groups per level.
    pub chains_per_level: Vec<usize>,
    /// Enable the phonebook's dynamic load balancer (Section 4.3).
    pub load_balancing: bool,
    /// Retain per-sample traces in the collectors (figures).
    pub record_samples: bool,
    /// Base RNG seed (each controller derives its own stream).
    pub seed: u64,
    /// Which coarse stream the correction moments pair against (see
    /// [`uq_mlmcmc::ledger::PairingMode`]).
    pub pairing: PairingMode,
    /// Dispatch speculative accept-case serves to idle servers (see
    /// [`uq_mlmcmc::ledger::LedgerBook`]). Statistically inert either
    /// way — a committed speculation is bit-identical to the real serve
    /// it replaces and a discarded one never touches session state
    /// (pinned by `tests/speculation_conformance.rs`) — so it defaults
    /// to on; the switch exists for A/B measurement and the conformance
    /// suite itself.
    pub speculation: bool,
}

impl ParallelConfig {
    pub fn new(samples_per_level: Vec<usize>, chains_per_level: Vec<usize>) -> Self {
        assert_eq!(samples_per_level.len(), chains_per_level.len());
        let n = samples_per_level.len();
        Self {
            samples_per_level,
            burn_in: vec![0; n],
            chains_per_level,
            load_balancing: true,
            record_samples: false,
            seed: 7,
            // the parallel backends default to the unbiased ledger
            // pairing: their pre-ledger serving was effectively unbiased
            // (independent stationary draws), so the proposal pairing's
            // O(contraction^ρ) bias would be a correctness regression
            // here. The sequential driver keeps the low-variance proposal
            // pairing by default — see DESIGN.md §5.
            pairing: PairingMode::Ledger,
            speculation: true,
        }
    }

    pub fn n_levels(&self) -> usize {
        self.samples_per_level.len()
    }

    /// Total ranks: root + phonebook + one collector per level + chains.
    pub fn n_ranks(&self) -> usize {
        2 + self.n_levels() + self.chains_per_level.iter().sum::<usize>()
    }

    pub(crate) fn first_controller_rank(&self) -> usize {
        2 + self.n_levels()
    }

    /// Initial level of the controller at `rank`.
    pub(crate) fn initial_level(&self, rank: usize) -> usize {
        let mut offset = rank - self.first_controller_rank();
        for (level, &count) in self.chains_per_level.iter().enumerate() {
            if offset < count {
                return level;
            }
            offset -= count;
        }
        unreachable!("rank beyond controller range")
    }
}

/// Per-level results of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelLevelReport {
    pub level: usize,
    pub n_samples: usize,
    /// `E[Q_0]` or `E[Q_l - Q_{l-1}]` per QOI component.
    pub mean_correction: Vec<f64>,
    pub var_correction: Vec<f64>,
    pub evaluations: usize,
    pub mean_eval_ms: f64,
    pub theta_samples: Vec<Vec<f64>>,
    pub correction_pairs: Vec<(Vec<f64>, Vec<f64>)>,
}

/// Results of a parallel MLMCMC run.
#[derive(Clone, Debug)]
pub struct ParallelReport {
    pub levels: Vec<ParallelLevelReport>,
    /// Wall-clock duration of the whole run in seconds.
    pub elapsed: f64,
    pub n_ranks: usize,
    /// Number of load-balancer reassignments performed.
    pub reassignments: usize,
}

impl ParallelReport {
    /// The telescoping-sum estimate.
    pub fn expectation(&self) -> Vec<f64> {
        let dim = self.levels[0].mean_correction.len();
        let mut total = vec![0.0; dim];
        for lvl in &self.levels {
            for (t, m) in total.iter_mut().zip(&lvl.mean_correction) {
                *t += m;
            }
        }
        total
    }

    pub fn total_evaluations(&self) -> usize {
        self.levels.iter().map(|l| l.evaluations).sum()
    }
}

// ---------------------------------------------------------------------
// remote coarse-proposal source
// ---------------------------------------------------------------------

/// Shared handle to this rank's communication context (single-threaded
/// use; the mutex only satisfies `Send` requirements).
type SharedCtx = Arc<parking_lot::Mutex<RankCtx<Msg>>>;

/// A [`CoarseProposalSource`] that requests subsampled states from
/// level-`coarse_level` controllers through the phonebook.
struct RemoteCoarseSource {
    coarse_level: usize,
    ctx: SharedCtx,
    my_rank: usize,
    stop: Arc<AtomicBool>,
    /// Lazily constructed coarse problem for the one-off starting-point
    /// density evaluation.
    coarse_problem: Box<dyn SamplingProblem>,
    tracer: Tracer,
}

impl CoarseProposalSource for RemoteCoarseSource {
    // The request ships the requester's rewind anchor; the phonebook
    // attaches this requester's ledger lease and a serving controller
    // executes the serve (per-requester exactness rewind + autonomous
    // pairing track — see uq-mlmcmc's ledger docs).
    //
    // This source blocks its OS-thread rank inside `recv_match` (the
    // thread scheduler dedicates a thread per rank), so it is always
    // `Ready`; the cooperative runtime's controllers use
    // `PendingCoarseSource` and suspend instead.
    fn request_coarse(&mut self, _rng: &mut dyn Rng, anchor: &CoarseSample) -> CoarseAcquire {
        if self.stop.load(Ordering::Relaxed) {
            return CoarseAcquire::Ready(poison_sample());
        }
        let mut ctx = self.ctx.lock();
        let wait_start = self.tracer.now();
        ctx.send(
            PHONEBOOK,
            Msg::CoarseRequest {
                level: self.coarse_level,
                reply_to: self.my_rank,
                anchor: Box::new(anchor.clone()),
            },
        );
        let want_level = self.coarse_level;
        let env = ctx.recv_match(|e| {
            matches!(
                &e.msg,
                Msg::CoarseSample { level, .. } if *level == want_level
            ) || matches!(e.msg, Msg::Poison | Msg::Shutdown)
        });
        self.tracer
            .observe(Hist::RequestWait, (self.tracer.now() - wait_start) * 1e6);
        CoarseAcquire::Ready(match env.msg {
            Msg::CoarseSample { sample, .. } => *sample,
            Msg::Shutdown => {
                // let the controller loop observe the shutdown too
                ctx.unrecv(env);
                self.stop.store(true, Ordering::Relaxed);
                poison_sample()
            }
            _ => {
                self.stop.store(true, Ordering::Relaxed);
                poison_sample()
            }
        })
    }

    fn anchor_at(&mut self, theta: &[f64]) -> CoarseSample {
        CoarseSample::plain(
            theta.to_vec(),
            self.coarse_problem.log_density(theta),
            self.coarse_problem.qoi(theta),
        )
    }
}

/// Sentinel sample returned during teardown; its `-∞` density forces a
/// rejection, so the chain state stays valid.
pub(crate) fn poison_sample() -> CoarseSample {
    CoarseSample::plain(Vec::new(), f64::NEG_INFINITY, Vec::new())
}

pub(crate) const ROOT: usize = 0;
pub(crate) const PHONEBOOK: usize = 1;

pub(crate) fn collector_rank(level: usize) -> usize {
    2 + level
}

// ---------------------------------------------------------------------
// roles
// ---------------------------------------------------------------------

pub(crate) fn root_role(
    ctx: &mut RankCtx<Msg>,
    config: &ParallelConfig,
    start: Instant,
    tracer: &Tracer,
    ckpt: Option<&ParallelCheckpoint<'_>>,
    elastic: Option<&ElasticOps<'_>>,
) -> ParallelReport {
    let n_levels = config.n_levels();
    let n_controllers = ctx.size() - config.first_controller_rank();
    let mut done = vec![false; n_levels];
    // checkpoint assembly state (one checkpoint in flight at a time)
    let mut ckpt_active = false;
    let mut ckpt_start = 0.0f64;
    let mut chain_ckpts: Vec<ChainCkpt> = Vec::new();
    let mut coll_ckpts: Vec<CollectorCkpt> = Vec::new();
    // phase 1: wait for all collectors (and drive any in-flight
    // checkpoint to completion — a snapshot cut must never be torn by
    // shutdown, so the loop also spins while `ckpt_active`)
    while done.iter().any(|d| !d) || ckpt_active {
        let env = ctx.recv_match(|e| {
            matches!(
                e.msg,
                Msg::LevelDone { .. }
                    | Msg::CheckpointTick
                    | Msg::ControllerCkpt(_)
                    | Msg::CollectorCkpt(_)
                    | Msg::LedgerCkpt(_)
            )
        });
        match env.msg {
            Msg::LevelDone { level } if !done[level] => {
                done[level] = true;
                // stop production on that level, keep chains serving
                for rank in config.first_controller_rank()..ctx.size() {
                    ctx.send(rank, Msg::StopProducing { level });
                }
                // inform the phonebook (load balancer input)
                ctx.send(PHONEBOOK, Msg::LevelDone { level });
            }
            // start a checkpoint: pause every controller at its next
            // clean boundary. Skipped while one is already running and
            // once every level is done (shutdown is imminent).
            Msg::CheckpointTick if ckpt.is_some() && !ckpt_active && done.iter().any(|d| !d) => {
                ckpt_active = true;
                ckpt_start = tracer.now();
                chain_ckpts.clear();
                coll_ckpts.clear();
                for rank in config.first_controller_rank()..ctx.size() {
                    ctx.send(rank, Msg::Checkpoint);
                }
            }
            Msg::ControllerCkpt(c) => {
                tracer.incr(Counter::BarrierAcks);
                chain_ckpts.push(*c);
                if chain_ckpts.len() == n_controllers && coll_ckpts.len() == n_levels {
                    ctx.send(PHONEBOOK, Msg::Checkpoint);
                }
            }
            Msg::CollectorCkpt(c) => {
                tracer.incr(Counter::BarrierAcks);
                coll_ckpts.push(*c);
                if chain_ckpts.len() == n_controllers && coll_ckpts.len() == n_levels {
                    ctx.send(PHONEBOOK, Msg::Checkpoint);
                }
            }
            Msg::LedgerCkpt(ledger) => {
                tracer.incr(Counter::BarrierAcks);
                // all controllers paused, collectors flushed, ledger
                // drained: assemble the consistent cut and persist it
                let spec = ckpt.expect("ledger checkpoint without a checkpoint spec");
                chain_ckpts.sort_by_key(|c| c.rank);
                coll_ckpts.sort_by_key(|c| (c.level, c.shard));
                let samples_done = coll_ckpts
                    .iter()
                    .filter(|c| c.level == n_levels - 1)
                    .map(|c| c.count)
                    .sum();
                let snapshot = RunSnapshot {
                    backend: Backend::Thread,
                    seed: config.seed,
                    samples_done,
                    chains: std::mem::take(&mut chain_ckpts),
                    collectors: std::mem::take(&mut coll_ckpts),
                    ledger: Some(*ledger),
                    sequential: None,
                };
                let hash = spec
                    .store
                    .put_snapshot(&snapshot, spec.config_hash)
                    .expect("checkpoint: snapshot write failed");
                if let Some(hook) = spec.on_snapshot {
                    hook(samples_done, &hash);
                }
                // elastic membership (net transport): retire and re-host
                // ranks while the barrier still holds every chain paused
                // and the ledger drained — no message can race the move
                let retiring = elastic.map_or_else(Vec::new, |e| (e.plan)(&snapshot));
                if let Some(e) = elastic.filter(|_| !retiring.is_empty()) {
                    for &r in &retiring {
                        ctx.send(r, Msg::Retire);
                    }
                    (e.rehost)(&snapshot, &retiring);
                }
                for rank in config.first_controller_rank()..ctx.size() {
                    // a re-hosted rank resumes unpaused; it needs no Done
                    if !retiring.contains(&rank) {
                        ctx.send(rank, Msg::CheckpointDone);
                    }
                }
                tracer.record(ROOT, SpanKind::Checkpoint, ckpt_start, tracer.now());
                ckpt_active = false;
            }
            _ => {}
        }
    }
    // phase 2: shut the phonebook down first and wait for the ack, so no
    // request can be forwarded to a controller that already exited
    ctx.send(PHONEBOOK, Msg::Shutdown);
    let _ = ctx.recv_match(|e| matches!(e.msg, Msg::PhonebookDown));
    // phase 3: shut everyone else down
    for level in 0..n_levels {
        ctx.send(collector_rank(level), Msg::Shutdown);
    }
    for rank in config.first_controller_rank()..ctx.size() {
        ctx.send(rank, Msg::Shutdown);
    }
    // phase 4: gather reports
    let mut collectors: Vec<Option<CollectorData>> = vec![None; n_levels];
    let mut evals = vec![0usize; n_levels];
    let mut eval_secs = vec![0.0f64; n_levels];
    let mut reassignments = 0usize;
    let mut collector_reports = 0;
    let mut controller_reports = 0;
    while collector_reports < n_levels || controller_reports < n_controllers {
        let env = ctx.recv();
        match env.msg {
            Msg::CollectorReport(data) => {
                let level = data.level;
                collectors[level] = Some(*data);
                collector_reports += 1;
            }
            Msg::ControllerReport {
                evals: e,
                eval_secs: s,
            } => {
                for (acc, v) in evals.iter_mut().zip(&e) {
                    *acc += v;
                }
                for (acc, v) in eval_secs.iter_mut().zip(&s) {
                    *acc += v;
                }
                controller_reports += 1;
            }
            Msg::Reassign { .. } => reassignments += 1, // phonebook's tally
            _ => {}
        }
    }
    let levels = collectors
        .into_iter()
        .enumerate()
        .map(|(level, c)| {
            let c = c.expect("collector report missing");
            ParallelLevelReport {
                level,
                n_samples: c.n_samples,
                mean_correction: c.mean,
                var_correction: c.variance,
                evaluations: evals[level],
                mean_eval_ms: if evals[level] > 0 {
                    eval_secs[level] * 1e3 / evals[level] as f64
                } else {
                    0.0
                },
                theta_samples: c.theta_samples,
                correction_pairs: c.correction_pairs,
            }
        })
        .collect();
    ParallelReport {
        levels,
        elapsed: start.elapsed().as_secs_f64(),
        n_ranks: ctx.size(),
        reassignments,
    }
}

pub(crate) fn phonebook_role(
    ctx: &mut RankCtx<Msg>,
    config: &ParallelConfig,
    tracer: &Tracer,
    resume: Option<&LedgerState>,
) {
    let n_levels = config.n_levels();
    let mut ready: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_levels];
    // queued requests: (requester, its rewind anchor)
    let mut pending: Vec<VecDeque<(usize, Box<CoarseSample>)>> = vec![VecDeque::new(); n_levels];
    let mut ledger =
        resume.map_or_else(LedgerBook::default, |s| LedgerBook::import_state(s.clone()));
    // serves dispatched but not yet written back. A checkpoint's ledger
    // export waits for this to reach zero: by then every outcome a
    // captured chain has already observed is in the ledger too, so the
    // cut is consistent (see DESIGN.md §7).
    let mut in_flight = 0usize;
    let mut ckpt_pending = false;
    let mut level_of: std::collections::HashMap<usize, usize> = (config.first_controller_rank()
        ..config.first_controller_rank() + config.chains_per_level.iter().sum::<usize>())
        .map(|rank| (rank, config.initial_level(rank)))
        .collect();
    let mut done = vec![false; n_levels];
    let mut reassignments = 0usize;
    // inferred per-level sample production intervals (EMA, seconds) used
    // to rate-limit reassignment at the model-runtime timescale
    let mut last_ready_at = vec![f64::NAN; n_levels];
    let mut ema_interval = vec![0.05f64; n_levels];
    let mut last_reassign_at = -f64::INFINITY;
    let epoch = Instant::now();
    loop {
        let env = ctx.recv();
        let now = epoch.elapsed().as_secs_f64();
        // a server became available (initial announce or completed
        // serve): route a queued request first; with no unmet demand
        // anywhere, put the idle capacity to work on an accept-case
        // speculation; otherwise park it for the load balancer
        macro_rules! server_available {
            ($server:expr, $level:expr) => {{
                let level = $level;
                if !last_ready_at[level].is_nan() {
                    let dt = now - last_ready_at[level];
                    ema_interval[level] = 0.8 * ema_interval[level] + 0.2 * dt;
                }
                last_ready_at[level] = now;
                if let Some((reply_to, anchor)) = pending[level].pop_front() {
                    let lease = ledger.lease(config.seed, level, reply_to, *anchor);
                    in_flight += 1;
                    ctx.send(
                        $server,
                        Msg::Serve {
                            reply_to,
                            lease,
                            speculative: false,
                        },
                    );
                } else if config.speculation && pending.iter().all(VecDeque::is_empty) {
                    match ledger.speculative_lease(level) {
                        Some((requester, lease)) => {
                            in_flight += 1;
                            ctx.send(
                                $server,
                                Msg::Serve {
                                    reply_to: requester,
                                    lease,
                                    speculative: true,
                                },
                            );
                        }
                        None => ready[level].push_back($server),
                    }
                } else {
                    ready[level].push_back($server);
                }
            }};
        }
        match env.msg {
            Msg::SampleReady { level } => server_available!(env.from, level),
            Msg::CoarseRequest {
                level,
                reply_to,
                anchor,
            } => {
                if let Some(sample) = ledger.try_commit(reply_to, level, &anchor) {
                    // speculation hit: the serve never touches the
                    // requester's critical path — answer directly
                    ctx.send(
                        reply_to,
                        Msg::CoarseSample {
                            level,
                            sample: Box::new(sample),
                        },
                    );
                    // the commit re-armed the session as a candidate;
                    // pair it with a parked server right away
                    if config.speculation && pending.iter().all(VecDeque::is_empty) {
                        if let Some(server) = ready[level].pop_front() {
                            match ledger.speculative_lease(level) {
                                Some((requester, lease)) => {
                                    in_flight += 1;
                                    ctx.send(
                                        server,
                                        Msg::Serve {
                                            reply_to: requester,
                                            lease,
                                            speculative: true,
                                        },
                                    );
                                }
                                None => ready[level].push_front(server),
                            }
                        }
                    }
                } else if let Some(server) = ready[level].pop_front() {
                    let lease = ledger.lease(config.seed, level, reply_to, *anchor);
                    in_flight += 1;
                    ctx.send(
                        server,
                        Msg::Serve {
                            reply_to,
                            lease,
                            speculative: false,
                        },
                    );
                } else {
                    pending[level].push_back((reply_to, anchor));
                }
            }
            Msg::ServeDone {
                requester,
                level,
                session,
                serves,
                outcome,
                speculative,
            } => {
                in_flight -= 1;
                tracer.incr(Counter::WriteBacks);
                if speculative {
                    ledger.store_speculation(requester, level, session, serves, *outcome);
                } else {
                    ledger.write_back(requester, level, session, serves, &outcome);
                }
                server_available!(env.from, level);
                // quiesce: controllers are all paused, so re-dispatches
                // above can only be speculations, which deplete (each
                // parks its session; nothing re-arms candidates while
                // requesters are paused) — `in_flight` reaches zero.
                if ckpt_pending && in_flight == 0 {
                    ckpt_pending = false;
                    debug_assert!(pending.iter().all(VecDeque::is_empty));
                    ctx.send(ROOT, Msg::LedgerCkpt(Box::new(ledger.export_state())));
                }
            }
            Msg::Checkpoint => {
                // sent by the root only after every controller acked its
                // pause, so no new real requests can arrive; export as
                // soon as the dispatched serves have drained
                if in_flight == 0 {
                    debug_assert!(pending.iter().all(VecDeque::is_empty));
                    ctx.send(ROOT, Msg::LedgerCkpt(Box::new(ledger.export_state())));
                } else {
                    ckpt_pending = true;
                }
            }
            Msg::LevelDone { level } => done[level] = true,
            Msg::Shutdown => {
                // no more forwards: poison every queued request, ack, exit
                for queue in &mut pending {
                    for (reply_to, _) in queue.drain(..) {
                        ctx.send(reply_to, Msg::Poison);
                    }
                }
                ctx.send(ROOT, Msg::PhonebookDown);
                return;
            }
            _ => {}
        }
        // ------- dynamic load balancing (Section 4.3) -------
        if !config.load_balancing {
            continue;
        }
        // starved level: queued requests nobody is ready to serve
        let Some(starved) = (0..n_levels).find(|&l| !pending[l].is_empty()) else {
            continue;
        };
        // donor: a level with an idle ready chain that is either finished
        // or over-provisioned (≥ 2 idle chains), keeping at least one
        // chain per level that finer levels still depend on
        let donor_level = (0..n_levels).filter(|&m| m != starved).find(|&m| {
            let idle = ready[m].len();
            let group_count = level_of.values().filter(|&&l| l == m).count();
            let still_needed = (m + 1..n_levels).any(|f| !done[f]) || !done[m];
            if done[m] && pending[m].is_empty() {
                idle >= 1 && (!still_needed || group_count >= 2)
            } else {
                idle >= 2 && group_count >= 2
            }
        });
        let Some(donor_level) = donor_level else {
            continue;
        };
        // rate-limit at the timescale of the slower level's evaluations
        let cooldown = ema_interval[starved].max(ema_interval[donor_level]) * 2.0;
        if now - last_reassign_at < cooldown {
            continue;
        }
        if let Some(rank) = ready[donor_level].pop_front() {
            level_of.insert(rank, starved);
            // the reassigned chain restarts from scratch: its ledger
            // sessions (as a requester) are stale, drop them
            ledger.forget_requester(rank);
            ctx.send(rank, Msg::Reassign { level: starved });
            // tell root so the final report counts reassignments
            ctx.send(ROOT, Msg::Reassign { level: starved });
            tracer.mark(
                rank,
                SpanKind::Reassign {
                    from: donor_level,
                    to: starved,
                },
            );
            reassignments += 1;
            let _ = reassignments;
            last_reassign_at = now;
        }
    }
}

pub(crate) fn collector_role(
    ctx: &mut RankCtx<Msg>,
    level: usize,
    config: &ParallelConfig,
    ckpt_every: usize,
    resume: Option<&CollectorCkpt>,
) {
    let target = config.samples_per_level[level];
    // the top-level collector paces checkpoints: every `ckpt_every`
    // recorded corrections it ticks the root
    let ticker = ckpt_every > 0 && level + 1 == config.n_levels();
    let mut moments: Option<VectorMoments> = resume
        .and_then(|r| r.moments.as_deref())
        .map(VectorMoments::from_parts);
    let mut count = resume.map_or(0, |r| r.count);
    let mut theta_samples = resume.map(|r| r.theta_samples.clone()).unwrap_or_default();
    let mut correction_pairs = resume
        .map(|r| r.correction_pairs.clone())
        .unwrap_or_default();
    // checkpoint-flush markers seen since the last capture
    let mut flushes = 0usize;
    let mut done_sent = count >= target;
    if done_sent {
        ctx.send(ROOT, Msg::LevelDone { level });
    }
    loop {
        let env = ctx.recv();
        match env.msg {
            Msg::Correction {
                level: l,
                y,
                theta,
                fine_qoi,
                coarse_qoi,
            } if l == level && count < target => {
                moments
                    .get_or_insert_with(|| VectorMoments::new(y.len()))
                    .push(&y);
                count += 1;
                if config.record_samples {
                    theta_samples.push(theta);
                    if let Some(cq) = coarse_qoi {
                        correction_pairs.push((cq, fine_qoi));
                    }
                }
                if count == target && !done_sent {
                    done_sent = true;
                    ctx.send(ROOT, Msg::LevelDone { level });
                } else if ticker && count.is_multiple_of(ckpt_every) {
                    ctx.send(ROOT, Msg::CheckpointTick);
                }
            }
            Msg::CheckpointFlush => {
                // one marker per chain on this level, each sent after
                // that chain's last pre-pause Correction (FIFO per
                // destination): once all arrive, this collector's state
                // is consistent with every captured chain
                flushes += 1;
                if flushes == config.chains_per_level[level] {
                    flushes = 0;
                    ctx.send(
                        ROOT,
                        Msg::CollectorCkpt(Box::new(CollectorCkpt {
                            level,
                            shard: 0,
                            count,
                            moments: moments.as_ref().map(VectorMoments::parts),
                            theta_samples: theta_samples.clone(),
                            correction_pairs: correction_pairs.clone(),
                        })),
                    );
                }
            }
            Msg::Shutdown => {
                let (mean, variance) = match &moments {
                    Some(m) => (m.mean(), m.variance()),
                    None => (Vec::new(), Vec::new()),
                };
                ctx.send(
                    ROOT,
                    Msg::CollectorReport(Box::new(CollectorData {
                        level,
                        n_samples: count,
                        mean,
                        variance,
                        theta_samples,
                        correction_pairs,
                    })),
                );
                return;
            }
            _ => {}
        }
    }
}

/// Everything a controller needs to (re)build its chain on a level.
struct ControllerHarness<'a> {
    factory: &'a dyn LevelFactory,
    shared: SharedCtx,
    rank: usize,
    stop: Arc<AtomicBool>,
    counters: Vec<EvalCounter>,
    tracer: Tracer,
}

impl ControllerHarness<'_> {
    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(CountingProblem::new(
            self.factory.problem(level),
            self.counters[level].clone(),
        ))
    }

    fn build_chain(&self, level: usize) -> MlChain {
        if level == 0 {
            MlChain::base(
                self.problem(0),
                self.factory.proposal(0),
                self.factory.starting_point(0),
            )
        } else {
            let coarse_dim = self.factory.starting_point(level - 1).len();
            let mut theta0 = self.factory.starting_point(level);
            theta0[..coarse_dim].copy_from_slice(&self.factory.starting_point(level - 1));
            let source = RemoteCoarseSource {
                coarse_level: level - 1,
                ctx: Arc::clone(&self.shared),
                my_rank: self.rank,
                stop: Arc::clone(&self.stop),
                coarse_problem: self.problem(level - 1),
                tracer: self.tracer.clone(),
            };
            MlChain::coupled(
                level,
                self.problem(level),
                Box::new(source),
                self.factory.proposal(level),
                coarse_dim,
                theta0,
            )
        }
    }
}

/// Returns `Some(ctx)` only when the rank was told to [`Msg::Retire`]
/// at a held checkpoint barrier: the net transport takes the channel
/// back (with anything still queued in it) and re-hosts the rank
/// elsewhere from the barrier snapshot.
#[allow(clippy::too_many_lines)]
pub(crate) fn controller_role(
    ctx: RankCtx<Msg>,
    factory: &dyn LevelFactory,
    config: &ParallelConfig,
    tracer: &Tracer,
    initial_level: usize,
    resume: Option<&ChainCkpt>,
) -> Option<RankCtx<Msg>> {
    let rank = ctx.rank();
    let n_levels = config.n_levels();
    let shared: SharedCtx = Arc::new(parking_lot::Mutex::new(ctx));
    let stop = Arc::new(AtomicBool::new(false));
    let harness = ControllerHarness {
        factory,
        shared: Arc::clone(&shared),
        rank,
        stop: Arc::clone(&stop),
        counters: (0..n_levels).map(|_| EvalCounter::new()).collect(),
        tracer: tracer.clone(),
    };
    let mut rng = resume.map_or_else(
        || StdRng::seed_from_u64(controller_seed(config.seed, rank)),
        |r| StdRng::from_state(r.rng),
    );
    let mut done_levels = resume.map_or_else(|| vec![false; n_levels], |r| r.done_levels.clone());
    // chain state to restore on the first level entry (resume skips
    // burn-in: thread-backend checkpoints only happen past it)
    let mut resume_chain = resume.map(|r| r.chain.clone());
    let mut resume_producing = resume.map(|r| r.producing);
    let mut retired = false;

    'levels: loop {
        // (re)build on the current level
        let level = {
            // the level may have been changed by a Reassign handled below
            LEVEL.with(|l| l.get()).unwrap_or(initial_level)
        };
        let mut chain = harness.build_chain(level);
        if let Some(state) = resume_chain.take() {
            chain.import_state(state);
        } else {
            // burn-in (Fig. 9's yellow span)
            let burn_start = tracer.now();
            for _ in 0..config.burn_in[level] {
                chain.step(&mut rng);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            tracer.record(rank, SpanKind::Burnin { level }, burn_start, tracer.now());
        }

        let rho = factory.subsampling_rate(level).max(1);
        let is_top = level + 1 >= n_levels;
        let mut producing = resume_producing.take().unwrap_or(!done_levels[level]);
        let mut paused = false;
        let mut pause_start = 0.0f64;
        let mut pending_serves: VecDeque<(usize, Box<LedgerLease>, bool)> = VecDeque::new();
        let mut announced = false;

        loop {
            if stop.load(Ordering::Relaxed) {
                break 'levels;
            }
            // handle everything already queued, without blocking
            loop {
                let env = {
                    let mut c = shared.lock();
                    c.try_recv()
                };
                let Some(env) = env else { break };
                match env.msg {
                    Msg::Serve {
                        reply_to,
                        lease,
                        speculative,
                    } => pending_serves.push_back((reply_to, lease, speculative)),
                    Msg::StopProducing { level: l } => {
                        done_levels[l] = true;
                        if l == level {
                            producing = false;
                        }
                    }
                    Msg::Reassign { level: new_level } => {
                        // abandon this chain, rebuild on the new level
                        LEVEL.with(|l| l.set(Some(new_level)));
                        // poison anyone we promised to serve — but never
                        // the target of a speculative serve, who never
                        // asked and may be waiting on a real serve from
                        // someone else
                        let c = shared.lock();
                        for (reply_to, _, speculative) in pending_serves.drain(..) {
                            if !speculative {
                                c.send(reply_to, Msg::Poison);
                            }
                        }
                        drop(c);
                        continue 'levels;
                    }
                    Msg::Shutdown => {
                        stop.store(true, Ordering::Relaxed);
                    }
                    Msg::Checkpoint => {
                        // this drain point is a clean boundary: the last
                        // own step (including every coarse request it
                        // made) has completed and the rng sits between
                        // draws. Flush the collector (FIFO marker after
                        // our last Correction), ship the captured state,
                        // pause own stepping — serving continues below.
                        let c = shared.lock();
                        c.send(collector_rank(level), Msg::CheckpointFlush);
                        c.send(
                            ROOT,
                            Msg::ControllerCkpt(Box::new(ChainCkpt {
                                rank,
                                level,
                                burnin_left: 0,
                                producing,
                                done_levels: done_levels.clone(),
                                shard_rr: 0,
                                rng: rng.state(),
                                chain: chain.export_state(),
                            })),
                        );
                        drop(c);
                        paused = true;
                        pause_start = tracer.now();
                    }
                    Msg::CheckpointDone => {
                        if paused {
                            tracer.record(rank, SpanKind::Quiesce, pause_start, tracer.now());
                        }
                        paused = false;
                    }
                    Msg::Retire => {
                        // only ever sent while a barrier holds: our state
                        // is already in the snapshot and no serve can be
                        // in flight toward us
                        debug_assert!(paused, "Retire outside a checkpoint barrier");
                        debug_assert!(pending_serves.is_empty(), "Retire with pending serves");
                        retired = true;
                    }
                    _ => {}
                }
            }
            if retired {
                break 'levels;
            }
            if stop.load(Ordering::Relaxed) {
                break 'levels;
            }

            // a requester is suspended on every queued real serve:
            // execute the ledger serves before advancing our own chain.
            // The serve rewinds/continues the requester's session on this
            // chain and restores our own trajectory afterwards (cached
            // values only, no forward-model evaluations for the restores
            // themselves). A speculative serve runs identically — same
            // pure function of the lease — but its outcome travels only
            // to the phonebook's speculation store.
            if let Some((reply_to, lease, speculative)) = pending_serves.pop_front() {
                let snapshot = chain.current_as_sample();
                let serve_start = tracer.now();
                let out = ledger::serve(&mut chain, rho, &lease);
                let kind = if speculative {
                    SpanKind::Speculate { level }
                } else {
                    SpanKind::Serve { level }
                };
                tracer.record(rank, kind, serve_start, tracer.now());
                tracer.incr(Counter::Serves);
                chain.restore(&snapshot);
                let c = shared.lock();
                // one batched message: write-back (or speculative
                // outcome) + availability re-announce. It MUST be sent
                // before the requester's proposal: program order plus
                // per-destination FIFO then guarantee the phonebook
                // applies the write-back before the requester's next
                // request can arrive, so a session never serves the same
                // stream position twice (the no-replay invariant the
                // speculation commit check relies on).
                let proposal = (!speculative).then(|| out.proposal.clone());
                c.send(
                    PHONEBOOK,
                    Msg::ServeDone {
                        requester: reply_to,
                        level,
                        session: lease.session_seed,
                        serves: lease.serves + 1,
                        outcome: Box::new(out),
                        speculative,
                    },
                );
                if let Some(proposal) = proposal {
                    c.send(
                        reply_to,
                        Msg::CoarseSample {
                            level,
                            sample: Box::new(proposal),
                        },
                    );
                }
                drop(c);
                announced = true;
                continue;
            }

            if !announced && !is_top {
                // announce serve availability (ρ is enforced inside the
                // ledger serve, so no own-chain stride gating is needed)
                let c = shared.lock();
                c.send(PHONEBOOK, Msg::SampleReady { level });
                drop(c);
                announced = true;
            }

            if producing && !paused {
                let eval_start = tracer.now();
                chain.step(&mut rng);
                tracer.record(rank, SpanKind::Eval { level }, eval_start, tracer.now());
                if stop.load(Ordering::Relaxed) {
                    break 'levels;
                }
                let fine_qoi = chain.state().qoi.clone();
                let paired = match config.pairing {
                    PairingMode::Proposal => chain.last_coarse(),
                    PairingMode::Ledger => chain.last_pairing(),
                };
                let y = match paired {
                    None => fine_qoi.clone(),
                    Some(c) => fine_qoi.iter().zip(&c.qoi).map(|(f, cq)| f - cq).collect(),
                };
                // the recorded pair always shows the proposal coupling
                let coarse_qoi = chain.last_coarse().map(|c| c.qoi.clone());
                let c = shared.lock();
                c.send(
                    collector_rank(level),
                    Msg::Correction {
                        level,
                        y,
                        theta: chain.state().theta.clone(),
                        fine_qoi,
                        coarse_qoi,
                    },
                );
            } else {
                // idle: block for the next message (handled next iteration)
                let env = {
                    let mut c = shared.lock();
                    c.recv()
                };
                let mut c = shared.lock();
                c.unrecv(env);
            }
        }
    }

    if retired {
        // being re-hosted, not shut down: no poisons, no report (the
        // re-hosted instance reports at shutdown) — hand the channel
        // back to the transport with whatever is still queued in it
        drop(harness);
        return Arc::try_unwrap(shared)
            .ok()
            .map(parking_lot::Mutex::into_inner);
    }

    // teardown: poison outstanding real serve requests (speculative
    // targets never asked — dropping theirs is silent), then report
    let mut c = shared.lock();
    for env in c.drain() {
        if let Msg::Serve {
            reply_to,
            speculative: false,
            ..
        } = env.msg
        {
            c.send(reply_to, Msg::Poison);
        }
    }
    let evals: Vec<usize> = harness
        .counters
        .iter()
        .map(EvalCounter::evaluations)
        .collect();
    let eval_secs: Vec<f64> = harness
        .counters
        .iter()
        .map(EvalCounter::total_secs)
        .collect();
    c.send(ROOT, Msg::ControllerReport { evals, eval_secs });
    None
}

thread_local! {
    /// Level override set by a `Reassign` (thread-local because each
    /// controller owns exactly one thread).
    pub(crate) static LEVEL: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Run parallel MLMCMC over the factory's hierarchy.
///
/// Spawns `config.n_ranks()` rank threads (root, phonebook, collectors,
/// controllers), executes the full schedule and returns the assembled
/// report. `tracer` may be [`Tracer::disabled`].
pub fn run_parallel(
    factory: &dyn LevelFactory,
    config: &ParallelConfig,
    tracer: &Tracer,
) -> ParallelReport {
    run_parallel_ckpt(factory, config, tracer, None, None)
}

/// [`run_parallel`] with durable-run support: periodically persist
/// consistent-cut snapshots to `checkpoint`'s run store and/or resume a
/// run from a previously captured [`RunSnapshot`].
///
/// Both require `config.load_balancing == false` — the snapshot pins
/// each chain to a level, so the assignment must be static. A resumed
/// run continues bit-identically: every chain restores its exact kernel
/// state and RNG stream position, collectors restore their accumulators
/// and the phonebook re-imports the full rewind ledger.
pub fn run_parallel_ckpt(
    factory: &dyn LevelFactory,
    config: &ParallelConfig,
    tracer: &Tracer,
    checkpoint: Option<&ParallelCheckpoint<'_>>,
    resume: Option<&RunSnapshot>,
) -> ParallelReport {
    assert!(
        config.n_levels() <= factory.n_levels(),
        "run_parallel: more levels configured than the factory provides"
    );
    assert!(
        config.chains_per_level.iter().all(|&c| c >= 1),
        "run_parallel: every level needs at least one chain"
    );
    if checkpoint.is_some() || resume.is_some() {
        assert!(
            !config.load_balancing,
            "run_parallel: checkpoint/resume requires load_balancing = false \
             (snapshots pin each chain to a level)"
        );
    }
    let n_controllers = config.n_ranks() - config.first_controller_rank();
    if let Some(snap) = resume {
        assert!(
            matches!(snap.backend, Backend::Thread),
            "run_parallel: snapshot was taken by the {} backend",
            snap.backend
        );
        assert_eq!(
            snap.seed, config.seed,
            "run_parallel: snapshot seed mismatch"
        );
        assert_eq!(
            snap.chains.len(),
            n_controllers,
            "run_parallel: snapshot chain count mismatch"
        );
        assert_eq!(
            snap.collectors.len(),
            config.n_levels(),
            "run_parallel: snapshot collector count mismatch"
        );
        for (i, c) in snap.chains.iter().enumerate() {
            assert_eq!(
                c.rank,
                config.first_controller_rank() + i,
                "run_parallel: snapshot chain ranks inconsistent"
            );
        }
    }
    let start = Instant::now();
    let results = Universe::run(config.n_ranks(), |mut ctx: RankCtx<Msg>| {
        let rank = ctx.rank();
        if rank == ROOT {
            Some(root_role(&mut ctx, config, start, tracer, checkpoint, None))
        } else if rank == PHONEBOOK {
            phonebook_role(
                &mut ctx,
                config,
                tracer,
                resume.and_then(|s| s.ledger.as_ref()),
            );
            None
        } else if rank < config.first_controller_rank() {
            let level = rank - 2;
            collector_role(
                &mut ctx,
                level,
                config,
                checkpoint.map_or(0, |c| c.every),
                resume.map(|s| &s.collectors[level]),
            );
            None
        } else {
            LEVEL.with(|l| l.set(None));
            let chain_ckpt = resume.map(|s| &s.chains[rank - config.first_controller_rank()]);
            let level = chain_ckpt.map_or_else(|| config.initial_level(rank), |c| c.level);
            // no elastic membership in-process: never retires
            let _ = controller_role(ctx, factory, config, tracer, level, chain_ckpt);
            None
        }
    });
    results
        .into_iter()
        .flatten()
        .next()
        .expect("root must produce a report")
}

#[cfg(test)]
mod tests {
    use super::*;
    use uq_linalg::prob::isotropic_gaussian_logpdf;
    use uq_mcmc::proposal::GaussianRandomWalk;
    use uq_mcmc::Proposal;

    /// Analytic Gaussian hierarchy (same targets as the core test suite).
    struct GaussianHierarchy {
        means: Vec<f64>,
        sds: Vec<f64>,
    }

    impl GaussianHierarchy {
        fn three_level() -> Self {
            Self {
                means: vec![0.6, 0.9, 1.0],
                sds: vec![0.65, 0.55, 0.5],
            }
        }
    }

    struct Target {
        mean: f64,
        sd: f64,
    }

    impl SamplingProblem for Target {
        fn dim(&self) -> usize {
            1
        }
        fn log_density(&mut self, theta: &[f64]) -> f64 {
            isotropic_gaussian_logpdf(theta, &[self.mean], self.sd)
        }
    }

    impl LevelFactory for GaussianHierarchy {
        fn n_levels(&self) -> usize {
            self.means.len()
        }
        fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
            Box::new(Target {
                mean: self.means[level],
                sd: self.sds[level],
            })
        }
        fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
            Box::new(GaussianRandomWalk::new(0.8))
        }
        fn subsampling_rate(&self, _level: usize) -> usize {
            3
        }
        fn starting_point(&self, _level: usize) -> Vec<f64> {
            vec![0.0]
        }
    }

    #[test]
    fn two_level_parallel_run_completes() {
        let h = GaussianHierarchy {
            means: vec![0.5, 1.0],
            sds: vec![0.6, 0.5],
        };
        let config = ParallelConfig::new(vec![2000, 800], vec![1, 1]);
        let report = run_parallel(&h, &config, &Tracer::disabled());
        assert_eq!(report.levels[0].n_samples, 2000);
        assert_eq!(report.levels[1].n_samples, 800);
        assert!(report.total_evaluations() >= 2800);
    }

    #[test]
    fn three_level_estimate_matches_truth() {
        let h = GaussianHierarchy::three_level();
        let mut config = ParallelConfig::new(vec![30_000, 4_000, 1_500], vec![2, 2, 1]);
        config.burn_in = vec![300, 100, 50];
        let report = run_parallel(&h, &config, &Tracer::disabled());
        let est = report.expectation()[0];
        assert!(
            (est - 1.0).abs() < 0.08,
            "parallel telescoping estimate {est}"
        );
        // correction means per level
        assert!((report.levels[0].mean_correction[0] - 0.6).abs() < 0.08);
        assert!((report.levels[1].mean_correction[0] - 0.3).abs() < 0.1);
    }

    #[test]
    fn load_balancer_disabled_still_completes() {
        let h = GaussianHierarchy::three_level();
        let mut config = ParallelConfig::new(vec![3000, 600, 200], vec![1, 1, 1]);
        config.load_balancing = false;
        let report = run_parallel(&h, &config, &Tracer::disabled());
        assert_eq!(report.reassignments, 0);
        assert_eq!(report.levels[2].n_samples, 200);
    }

    #[test]
    fn recording_returns_samples_and_pairs() {
        let h = GaussianHierarchy::three_level();
        let mut config = ParallelConfig::new(vec![400, 150, 60], vec![1, 1, 1]);
        config.record_samples = true;
        let report = run_parallel(&h, &config, &Tracer::disabled());
        assert_eq!(report.levels[0].theta_samples.len(), 400);
        assert_eq!(report.levels[1].correction_pairs.len(), 150);
        assert!(report.levels[0].correction_pairs.is_empty());
        // accepted coarse proposals appear as identical pairs
        let identical = report.levels[1]
            .correction_pairs
            .iter()
            .filter(|(c, f)| c == f)
            .count();
        assert!(identical > 0);
    }

    #[test]
    fn tracer_captures_burnin_and_evals() {
        let h = GaussianHierarchy::three_level();
        let mut config = ParallelConfig::new(vec![300, 100, 40], vec![1, 1, 1]);
        config.burn_in = vec![50, 20, 10];
        let tracer = Tracer::new();
        let _ = run_parallel(&h, &config, &tracer);
        let events = tracer.events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, SpanKind::Burnin { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, SpanKind::Eval { .. })));
    }

    /// Bit-level equality of everything deterministic in a report
    /// (evaluation counts are excluded: a resumed run rebuilds its
    /// chains, so wall-clock/eval bookkeeping legitimately differs).
    fn assert_reports_identical(a: &ParallelReport, b: &ParallelReport) {
        assert_eq!(a.levels.len(), b.levels.len());
        for (la, lb) in a.levels.iter().zip(&b.levels) {
            assert_eq!(la.n_samples, lb.n_samples);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&la.mean_correction), bits(&lb.mean_correction));
            assert_eq!(bits(&la.var_correction), bits(&lb.var_correction));
            assert_eq!(la.theta_samples, lb.theta_samples);
            assert_eq!(la.correction_pairs, lb.correction_pairs);
        }
    }

    #[test]
    fn thread_resume_from_every_snapshot_is_bit_identical() {
        use std::sync::Mutex;
        use uq_mlmcmc::store::RunStore;

        // two levels: the serving chains are base chains, so serve legs
        // make no nested coarse requests and every ledger session sees a
        // deterministic request order — the regime where the thread
        // backend is bit-reproducible (three-level thread runs
        // interleave own-step and serve-leg requests on mid-level
        // sessions nondeterministically; see DESIGN.md §7)
        let h = GaussianHierarchy {
            means: vec![0.5, 1.0],
            sds: vec![0.6, 0.5],
        };
        let mut config = ParallelConfig::new(vec![300, 120], vec![1, 1]);
        config.burn_in = vec![30, 20];
        config.load_balancing = false;
        config.record_samples = true;
        let baseline = run_parallel(&h, &config, &Tracer::disabled());
        let baseline2 = run_parallel(&h, &config, &Tracer::disabled());
        assert_reports_identical(&baseline, &baseline2);

        let dir = std::env::temp_dir().join(format!("uq-thread-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RunStore::open(&dir).unwrap();
        let hashes: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let hook = |_done: usize, hash: &str| hashes.lock().unwrap().push(hash.to_string());
        let spec = ParallelCheckpoint {
            store: &store,
            config_hash: 99,
            every: 7,
            on_snapshot: Some(&hook),
            stop: None,
        };
        let checkpointed = run_parallel_ckpt(&h, &config, &Tracer::disabled(), Some(&spec), None);
        // checkpointing itself must not perturb the run
        assert_reports_identical(&baseline, &checkpointed);

        let hashes = hashes.into_inner().unwrap();
        assert!(
            hashes.len() >= 3,
            "expected several snapshots, got {}",
            hashes.len()
        );
        for hash in &hashes {
            let (snap, cfg) = store.get_snapshot(hash).unwrap();
            assert_eq!(cfg, 99);
            let resumed = run_parallel_ckpt(&h, &config, &Tracer::disabled(), None, Some(&snap));
            assert_reports_identical(&baseline, &resumed);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn extra_chains_on_coarse_level_share_load() {
        let h = GaussianHierarchy::three_level();
        let config = ParallelConfig::new(vec![4000, 800, 300], vec![3, 1, 1]);
        let report = run_parallel(&h, &config, &Tracer::disabled());
        assert_eq!(report.levels[0].n_samples, 4000);
        assert!(report.expectation()[0].is_finite());
    }
}
