//! Multi-process TCP transport behind the [`crate::comm`] rank API.
//!
//! One **driver** process hosts the fixed ranks (root, phonebook,
//! collectors) plus any controller remainder; each **worker** process
//! hosts a contiguous block of controller ranks. Every process runs the
//! exact same role functions as the in-process thread scheduler — the
//! transport only replaces channel delivery with length-prefixed,
//! checksummed frames over per-peer sockets, so a net run in the
//! deterministic regime is bit-for-bit digest-identical to
//! [`crate::scheduler::run_parallel`] (pinned by
//! `tests/net_conformance.rs`).
//!
//! Ordering is the load-bearing invariant: the scheduler relies on
//! per-destination FIFO *and* on one cross-destination program-order
//! guarantee (a server's `ServeDone` to the phonebook is sent before the
//! requester's `CoarseSample`, so a session write-back always lands
//! before the next request against it). The transport preserves full
//! sender program order across destinations by funnelling every remote
//! send through a single relay channel per process
//! (`Outbox::Relay`) into a single socket — TCP then
//! keeps that order, and the receiving side routes frames to rank
//! channels in arrival order from a single reader thread.
//!
//! Elastic membership rides the PR-6 checkpoint barrier: at a completed
//! barrier every chain is paused at a clean boundary, the ledger is
//! drained and nothing is in flight toward controllers, so a departing
//! worker's ranks (or ranks donated to a joiner) migrate as plain data —
//! the just-persisted [`RunSnapshot`] carries their chain state, and any
//! messages still queued in their channels travel alongside as
//! `leftovers`. See `DESIGN.md` §9.
//!
//! Failure semantics are fail-stop: a peer socket dying outside a
//! planned departure aborts the run (the snapshot store is the recovery
//! path), it is never silently dropped.

use crate::comm::{Envelope, Outbox, RankCtx};
use crate::obs::{Counter, Tracer};
use crate::roles::PhonebookStats;
use crate::scheduler::{
    collector_rank, collector_role, controller_role, phonebook_role, root_role, CollectorData,
    ElasticOps, Msg, ParallelCheckpoint, ParallelConfig, ParallelLevelReport, ParallelReport,
    LEVEL, PHONEBOOK, ROOT,
};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use uq_mlmcmc::ledger::PairingMode;
use uq_mlmcmc::store::{fnv1a, ChainCkpt, Codec, Dec, Enc, RunSnapshot, RunStore, StoreError};
use uq_mlmcmc::LevelFactory;

/// Version stamped into every frame header. Bump on any change to the
/// [`Msg`] or [`Frame`] encodings — the committed golden frame fixture
/// (`tests/fixtures/golden_frame_v1.bin`) trips when the bytes drift
/// without a bump.
pub const PROTOCOL_VERSION: u32 = 1;

/// Frame magic (8 bytes), distinct from the snapshot store's
/// `b"UQSNAP\0\0"` so a frame can never be mistaken for a snapshot.
const NET_MAGIC: &[u8; 8] = b"UQNETFR\0";

/// Refuse frames claiming more than this payload (corrupt length field).
const MAX_FRAME_LEN: u64 = 1 << 30;

// ---------------------------------------------------------------------
// Msg wire codec
// ---------------------------------------------------------------------

// `PairingMode` and the `Codec` trait are both foreign here, so the tag
// is folded into `ParallelConfig`'s own codec instead of an orphan impl.
fn encode_pairing(p: PairingMode, enc: &mut Enc) {
    let tag: u8 = match p {
        PairingMode::Proposal => 0,
        PairingMode::Ledger => 1,
    };
    tag.encode(enc);
}

fn decode_pairing(dec: &mut Dec) -> Result<PairingMode, StoreError> {
    match u8::decode(dec)? {
        0 => Ok(PairingMode::Proposal),
        1 => Ok(PairingMode::Ledger),
        _ => Err(StoreError::Corrupt("invalid PairingMode tag")),
    }
}

impl Codec for ParallelConfig {
    fn encode(&self, enc: &mut Enc) {
        self.samples_per_level.encode(enc);
        self.burn_in.encode(enc);
        self.chains_per_level.encode(enc);
        self.load_balancing.encode(enc);
        self.record_samples.encode(enc);
        self.seed.encode(enc);
        encode_pairing(self.pairing, enc);
        self.speculation.encode(enc);
    }

    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(Self {
            samples_per_level: Codec::decode(dec)?,
            burn_in: Codec::decode(dec)?,
            chains_per_level: Codec::decode(dec)?,
            load_balancing: Codec::decode(dec)?,
            record_samples: Codec::decode(dec)?,
            seed: Codec::decode(dec)?,
            pairing: decode_pairing(dec)?,
            speculation: Codec::decode(dec)?,
        })
    }
}

impl Codec for PhonebookStats {
    fn encode(&self, enc: &mut Enc) {
        self.wakeups.encode(enc);
        self.messages.encode(enc);
        self.max_batch.encode(enc);
        self.routed.encode(enc);
        self.reassignments.encode(enc);
        self.ledger.encode(enc);
    }

    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(Self {
            wakeups: Codec::decode(dec)?,
            messages: Codec::decode(dec)?,
            max_batch: Codec::decode(dec)?,
            routed: Codec::decode(dec)?,
            reassignments: Codec::decode(dec)?,
            ledger: Codec::decode(dec)?,
        })
    }
}

impl Codec for CollectorData {
    fn encode(&self, enc: &mut Enc) {
        self.level.encode(enc);
        self.n_samples.encode(enc);
        self.mean.encode(enc);
        self.variance.encode(enc);
        self.theta_samples.encode(enc);
        self.correction_pairs.encode(enc);
    }

    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(Self {
            level: Codec::decode(dec)?,
            n_samples: Codec::decode(dec)?,
            mean: Codec::decode(dec)?,
            variance: Codec::decode(dec)?,
            theta_samples: Codec::decode(dec)?,
            correction_pairs: Codec::decode(dec)?,
        })
    }
}

impl Codec for Msg {
    fn encode(&self, enc: &mut Enc) {
        match self {
            Msg::CoarseRequest {
                level,
                reply_to,
                anchor,
            } => {
                0u8.encode(enc);
                level.encode(enc);
                reply_to.encode(enc);
                anchor.encode(enc);
            }
            Msg::Serve {
                reply_to,
                lease,
                speculative,
            } => {
                1u8.encode(enc);
                reply_to.encode(enc);
                lease.encode(enc);
                speculative.encode(enc);
            }
            Msg::CoarseSample { level, sample } => {
                2u8.encode(enc);
                level.encode(enc);
                sample.encode(enc);
            }
            Msg::ServeDone {
                requester,
                level,
                session,
                serves,
                outcome,
                speculative,
            } => {
                3u8.encode(enc);
                requester.encode(enc);
                level.encode(enc);
                session.encode(enc);
                serves.encode(enc);
                outcome.encode(enc);
                speculative.encode(enc);
            }
            Msg::Poison => 4u8.encode(enc),
            Msg::SampleReady { level } => {
                5u8.encode(enc);
                level.encode(enc);
            }
            Msg::Correction {
                level,
                y,
                theta,
                fine_qoi,
                coarse_qoi,
            } => {
                6u8.encode(enc);
                level.encode(enc);
                y.encode(enc);
                theta.encode(enc);
                fine_qoi.encode(enc);
                coarse_qoi.encode(enc);
            }
            Msg::LevelDone { level } => {
                7u8.encode(enc);
                level.encode(enc);
            }
            Msg::StopProducing { level } => {
                8u8.encode(enc);
                level.encode(enc);
            }
            Msg::Reassign { level } => {
                9u8.encode(enc);
                level.encode(enc);
            }
            Msg::Shutdown => 10u8.encode(enc),
            Msg::PhonebookDown => 11u8.encode(enc),
            Msg::PhonebookReport(stats) => {
                12u8.encode(enc);
                stats.encode(enc);
            }
            Msg::CollectorReport(data) => {
                13u8.encode(enc);
                data.encode(enc);
            }
            Msg::ControllerReport { evals, eval_secs } => {
                14u8.encode(enc);
                evals.encode(enc);
                eval_secs.encode(enc);
            }
            Msg::CheckpointTick => 15u8.encode(enc),
            Msg::Checkpoint => 16u8.encode(enc),
            Msg::CheckpointFlush => 17u8.encode(enc),
            Msg::ControllerCkpt(ckpt) => {
                18u8.encode(enc);
                ckpt.encode(enc);
            }
            Msg::CollectorCkpt(ckpt) => {
                19u8.encode(enc);
                ckpt.encode(enc);
            }
            Msg::LedgerCkpt(state) => {
                20u8.encode(enc);
                state.encode(enc);
            }
            Msg::CheckpointDone => 21u8.encode(enc),
            Msg::Retire => 22u8.encode(enc),
        }
    }

    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(match u8::decode(dec)? {
            0 => Msg::CoarseRequest {
                level: Codec::decode(dec)?,
                reply_to: Codec::decode(dec)?,
                anchor: Codec::decode(dec)?,
            },
            1 => Msg::Serve {
                reply_to: Codec::decode(dec)?,
                lease: Codec::decode(dec)?,
                speculative: Codec::decode(dec)?,
            },
            2 => Msg::CoarseSample {
                level: Codec::decode(dec)?,
                sample: Codec::decode(dec)?,
            },
            3 => Msg::ServeDone {
                requester: Codec::decode(dec)?,
                level: Codec::decode(dec)?,
                session: Codec::decode(dec)?,
                serves: Codec::decode(dec)?,
                outcome: Codec::decode(dec)?,
                speculative: Codec::decode(dec)?,
            },
            4 => Msg::Poison,
            5 => Msg::SampleReady {
                level: Codec::decode(dec)?,
            },
            6 => Msg::Correction {
                level: Codec::decode(dec)?,
                y: Codec::decode(dec)?,
                theta: Codec::decode(dec)?,
                fine_qoi: Codec::decode(dec)?,
                coarse_qoi: Codec::decode(dec)?,
            },
            7 => Msg::LevelDone {
                level: Codec::decode(dec)?,
            },
            8 => Msg::StopProducing {
                level: Codec::decode(dec)?,
            },
            9 => Msg::Reassign {
                level: Codec::decode(dec)?,
            },
            10 => Msg::Shutdown,
            11 => Msg::PhonebookDown,
            12 => Msg::PhonebookReport(Codec::decode(dec)?),
            13 => Msg::CollectorReport(Codec::decode(dec)?),
            14 => Msg::ControllerReport {
                evals: Codec::decode(dec)?,
                eval_secs: Codec::decode(dec)?,
            },
            15 => Msg::CheckpointTick,
            16 => Msg::Checkpoint,
            17 => Msg::CheckpointFlush,
            18 => Msg::ControllerCkpt(Codec::decode(dec)?),
            19 => Msg::CollectorCkpt(Codec::decode(dec)?),
            20 => Msg::LedgerCkpt(Codec::decode(dec)?),
            21 => Msg::CheckpointDone,
            22 => Msg::Retire,
            _ => return Err(StoreError::Corrupt("invalid Msg tag")),
        })
    }
}

// ---------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------

/// A `(destination rank, sender rank, message)` triple carried across
/// a membership change: messages still queued in a retiring rank's
/// channel when it exits, re-delivered verbatim to its next host.
pub type Leftover = (usize, usize, Msg);

/// Everything that crosses a socket.
#[derive(Debug)]
pub enum Frame {
    /// Worker → driver on connect. `join` workers are queued for
    /// admission at a later barrier; `leave_at_barrier = Some(k)`
    /// declares a planned departure at the `k`-th checkpoint barrier.
    Hello {
        version: u32,
        join: bool,
        leave_at_barrier: Option<u64>,
    },
    /// Driver → worker: your ranks, the run configuration, resume state
    /// for each rank (empty on a fresh start) and any leftover messages
    /// to pre-load into their channels.
    Assign {
        n_ranks: usize,
        ranks: Vec<usize>,
        config: ParallelConfig,
        ckpts: Vec<ChainCkpt>,
        leftovers: Vec<Leftover>,
    },
    /// Worker → driver: ranks spawned, channels wired — safe to route.
    Ready,
    /// A scheduler message in flight between ranks on different
    /// processes.
    Data { to: usize, from: usize, msg: Msg },
    /// Final frame on a connection. Workers always send one before
    /// closing (leftovers empty on a normal run end), so an EOF without
    /// a preceding `Bye` is a crash, not a departure.
    Bye { leftovers: Vec<Leftover> },
}

impl Codec for Frame {
    fn encode(&self, enc: &mut Enc) {
        match self {
            Frame::Hello {
                version,
                join,
                leave_at_barrier,
            } => {
                0u8.encode(enc);
                version.encode(enc);
                join.encode(enc);
                leave_at_barrier.encode(enc);
            }
            Frame::Assign {
                n_ranks,
                ranks,
                config,
                ckpts,
                leftovers,
            } => {
                1u8.encode(enc);
                n_ranks.encode(enc);
                ranks.encode(enc);
                config.encode(enc);
                ckpts.encode(enc);
                leftovers.encode(enc);
            }
            Frame::Ready => 2u8.encode(enc),
            Frame::Data { to, from, msg } => {
                3u8.encode(enc);
                to.encode(enc);
                from.encode(enc);
                msg.encode(enc);
            }
            Frame::Bye { leftovers } => {
                4u8.encode(enc);
                leftovers.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(match u8::decode(dec)? {
            0 => Frame::Hello {
                version: Codec::decode(dec)?,
                join: Codec::decode(dec)?,
                leave_at_barrier: Codec::decode(dec)?,
            },
            1 => Frame::Assign {
                n_ranks: Codec::decode(dec)?,
                ranks: Codec::decode(dec)?,
                config: Codec::decode(dec)?,
                ckpts: Codec::decode(dec)?,
                leftovers: Codec::decode(dec)?,
            },
            2 => Frame::Ready,
            3 => Frame::Data {
                to: Codec::decode(dec)?,
                from: Codec::decode(dec)?,
                msg: Codec::decode(dec)?,
            },
            4 => Frame::Bye {
                leftovers: Codec::decode(dec)?,
            },
            _ => return Err(StoreError::Corrupt("invalid Frame tag")),
        })
    }
}

/// Encode one frame into its full on-wire byte form:
/// `magic(8) ‖ version(4, LE) ‖ payload_len(8, LE) ‖ payload ‖ fnv1a(8, LE)`
/// with the checksum taken over everything before it.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut enc = Enc::new();
    frame.encode(&mut enc);
    let payload = enc.into_bytes();
    let mut out = Vec::with_capacity(28 + payload.len());
    out.extend_from_slice(NET_MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decode one full on-wire frame (the exact inverse of
/// [`encode_frame`]); rejects bad magic, version skew, length lies,
/// checksum mismatches and trailing bytes.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, StoreError> {
    if bytes.len() < 28 {
        return Err(StoreError::Truncated {
            needed: 28,
            available: bytes.len(),
        });
    }
    if &bytes[..8] != NET_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != PROTOCOL_VERSION {
        return Err(StoreError::BadVersion { found: version });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(StoreError::Corrupt("frame length exceeds cap"));
    }
    let total = 28 + len as usize;
    if bytes.len() < total {
        return Err(StoreError::Truncated {
            needed: total,
            available: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(StoreError::TrailingBytes(bytes.len() - total));
    }
    let body = &bytes[..20 + len as usize];
    let expected = fnv1a(body);
    let found = u64::from_le_bytes(bytes[total - 8..].try_into().unwrap());
    if expected != found {
        return Err(StoreError::ChecksumMismatch { expected, found });
    }
    let mut dec = Dec::new(&bytes[20..20 + len as usize]);
    let frame = Frame::decode(&mut dec)?;
    if dec.remaining() != 0 {
        return Err(StoreError::TrailingBytes(dec.remaining()));
    }
    Ok(frame)
}

/// Write one frame to a stream, counting it in the tracer.
fn write_frame(w: &mut impl Write, frame: &Frame, tracer: &Tracer) -> io::Result<()> {
    let bytes = encode_frame(frame);
    w.write_all(&bytes)?;
    tracer.incr(Counter::NetFramesOut);
    tracer.add(Counter::NetBytesOut, bytes.len() as u64);
    Ok(())
}

fn io_corrupt(err: StoreError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

/// Read one frame from a stream, counting it in the tracer. Corruption
/// (bad magic/version/checksum) surfaces as `InvalidData`.
fn read_frame(r: &mut impl Read, tracer: &Tracer) -> io::Result<Frame> {
    let mut header = [0u8; 20];
    r.read_exact(&mut header)?;
    if &header[..8] != NET_MAGIC {
        return Err(io_corrupt(StoreError::BadMagic));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != PROTOCOL_VERSION {
        return Err(io_corrupt(StoreError::BadVersion { found: version }));
    }
    let len = u64::from_le_bytes(header[12..20].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(io_corrupt(StoreError::Corrupt("frame length exceeds cap")));
    }
    let mut rest = vec![0u8; len as usize + 8];
    r.read_exact(&mut rest)?;
    let mut body = Vec::with_capacity(20 + len as usize);
    body.extend_from_slice(&header);
    body.extend_from_slice(&rest[..len as usize]);
    let expected = fnv1a(&body);
    let found = u64::from_le_bytes(rest[len as usize..].try_into().unwrap());
    if expected != found {
        return Err(io_corrupt(StoreError::ChecksumMismatch { expected, found }));
    }
    let mut dec = Dec::new(&rest[..len as usize]);
    let frame = Frame::decode(&mut dec).map_err(io_corrupt)?;
    if dec.remaining() != 0 {
        return Err(io_corrupt(StoreError::TrailingBytes(dec.remaining())));
    }
    tracer.incr(Counter::NetFramesIn);
    tracer.add(Counter::NetBytesIn, 28 + len);
    Ok(frame)
}

// ---------------------------------------------------------------------
// Digests
// ---------------------------------------------------------------------

/// FNV-1a digest over the statistically meaningful content of a run's
/// level reports (everything except wall-clock timings): the value two
/// runs must share to count as bit-identical in the conformance suites.
pub fn levels_digest(levels: &[ParallelLevelReport]) -> u64 {
    let mut enc = Enc::new();
    levels.len().encode(&mut enc);
    for lvl in levels {
        lvl.level.encode(&mut enc);
        lvl.n_samples.encode(&mut enc);
        lvl.mean_correction.encode(&mut enc);
        lvl.var_correction.encode(&mut enc);
        lvl.theta_samples.encode(&mut enc);
        lvl.correction_pairs.encode(&mut enc);
    }
    fnv1a(&enc.into_bytes())
}

/// [`levels_digest`] of a full report.
pub fn report_digest(report: &ParallelReport) -> u64 {
    levels_digest(&report.levels)
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

/// Where messages for a given rank go right now. Rewired at checkpoint
/// barriers when ranks migrate; every remote send consults the live
/// table through the router, so rewiring is a single slot write.
#[derive(Clone)]
enum Route {
    Local(Sender<Envelope<Msg>>),
    /// Index into [`DriverShared::peers`].
    Peer(usize),
    /// No host yet (startup only, before the rank's thread spawns).
    Unwired,
}

/// One worker connection on the driver side.
struct PeerLink {
    /// Write half, serialized: the router and the rehost handshake both
    /// write frames, and interleaved bytes would corrupt the stream.
    writer: Mutex<TcpStream>,
    ranks: Vec<usize>,
    leave_at_barrier: Option<u64>,
    /// Set by the downlink thread when the worker's final [`Frame::Bye`]
    /// arrives; `rehost` polls it to collect a departing worker's
    /// leftover messages.
    bye: Mutex<Option<Vec<Leftover>>>,
    gone: AtomicBool,
}

/// Membership changes decided by `plan`, executed by `rehost` (both run
/// on the root thread inside the same barrier, so the handoff is a
/// plain slot).
#[derive(Default)]
struct PlanOut {
    /// Peer indices departing at this barrier.
    leaves: Vec<usize>,
    /// Admitted joiners with the driver-hosted ranks donated to each.
    donations: Vec<(TcpStream, Vec<usize>)>,
}

struct DriverShared {
    routes: Mutex<Vec<Route>>,
    peers: Mutex<Vec<Arc<PeerLink>>>,
    /// Workers that said `Hello { join: true }`, awaiting admission.
    joiners: Mutex<VecDeque<TcpStream>>,
    /// Join handles of driver-hosted controller threads, by rank —
    /// removable individually so a donated rank can be reaped mid-run.
    handles: Mutex<HashMap<usize, JoinHandle<Option<RankCtx<Msg>>>>>,
    downlinks: Mutex<Vec<JoinHandle<()>>>,
    pending: Mutex<PlanOut>,
    /// Completed checkpoint barriers (identifies departure points).
    barrier: AtomicU64,
    dropped: Arc<AtomicUsize>,
    shutdown: AtomicBool,
    tracer: Tracer,
    migrations: AtomicU64,
}

/// Everything a controller thread needs, bundled so spawn closures are
/// `'static`.
struct DriverCtx {
    sh: Arc<DriverShared>,
    factory: Arc<dyn LevelFactory>,
    config: ParallelConfig,
    /// Outbox template for every rank hosted here: fixed ranks
    /// short-circuit through channels, all controller ranks relay
    /// through the router (so migrations only touch the route table).
    template: Vec<Outbox<Msg>>,
    n_ranks: usize,
    first_ctrl: usize,
}

/// Deliver one message to wherever its destination rank lives.
fn deliver(sh: &DriverShared, to: usize, env: Envelope<Msg>) {
    let route = sh.routes.lock()[to].clone();
    match route {
        Route::Local(tx) => {
            if tx.send(env).is_err() {
                sh.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        Route::Peer(i) => {
            let peer = Arc::clone(&sh.peers.lock()[i]);
            if peer.gone.load(Ordering::Acquire) {
                sh.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let frame = Frame::Data {
                to,
                from: env.from,
                msg: env.msg,
            };
            let res = write_frame(&mut *peer.writer.lock(), &frame, &sh.tracer);
            if let Err(e) = res {
                if sh.shutdown.load(Ordering::Acquire) || peer.gone.load(Ordering::Acquire) {
                    sh.dropped.fetch_add(1, Ordering::Relaxed);
                } else {
                    panic!("net driver: write to worker failed: {e}");
                }
            }
        }
        Route::Unwired => panic!("net driver: message routed to unwired rank {to}"),
    }
}

fn spawn_controller_thread(
    dc: &Arc<DriverCtx>,
    rank: usize,
    rx: crossbeam::channel::Receiver<Envelope<Msg>>,
    resume: Option<ChainCkpt>,
) -> JoinHandle<Option<RankCtx<Msg>>> {
    let dc = Arc::clone(dc);
    std::thread::Builder::new()
        .name(format!("uq-net-ctrl-{rank}"))
        .spawn(move || {
            LEVEL.with(|l| l.set(None));
            let ctx = RankCtx::from_parts(
                rank,
                dc.n_ranks,
                rx,
                dc.template.clone(),
                Arc::clone(&dc.sh.dropped),
            );
            let level = resume
                .as_ref()
                .map_or_else(|| dc.config.initial_level(rank), |c| c.level);
            controller_role(
                ctx,
                &*dc.factory,
                &dc.config,
                &dc.sh.tracer,
                level,
                resume.as_ref(),
            )
        })
        .expect("net driver: controller thread spawn failed")
}

fn spawn_downlink(
    sh: Arc<DriverShared>,
    peer: Arc<PeerLink>,
    mut reader: TcpStream,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("uq-net-downlink".into())
        .spawn(move || loop {
            match read_frame(&mut reader, &sh.tracer) {
                Ok(Frame::Data { to, from, msg }) => deliver(&sh, to, Envelope { from, msg }),
                Ok(Frame::Bye { leftovers }) => {
                    *peer.bye.lock() = Some(leftovers);
                    peer.gone.store(true, Ordering::Release);
                    break;
                }
                Ok(f) => panic!("net driver: unexpected frame from worker: {f:?}"),
                Err(e) => {
                    if sh.shutdown.load(Ordering::Acquire) || peer.gone.load(Ordering::Acquire) {
                        break;
                    }
                    // no Bye before the socket died: fail-stop (the run
                    // store holds the recovery point)
                    panic!("net driver: connection to worker lost: {e}");
                }
            }
        })
        .expect("net driver: downlink thread spawn failed")
}

fn spawn_listener(sh: Arc<DriverShared>, listener: TcpListener) -> JoinHandle<()> {
    listener
        .set_nonblocking(true)
        .expect("net driver: listener nonblocking");
    std::thread::Builder::new()
        .name("uq-net-listener".into())
        .spawn(move || loop {
            if sh.shutdown.load(Ordering::Acquire) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_nodelay(true);
                    let mut s = stream;
                    match read_frame(&mut s, &sh.tracer) {
                        Ok(Frame::Hello { .. }) => {
                            sh.tracer.incr(Counter::NetReconnects);
                            sh.joiners.lock().push_back(s);
                        }
                        // bad handshake: hang up, keep listening
                        _ => drop(s),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        })
        .expect("net driver: listener thread spawn failed")
}

/// Decide this barrier's membership changes; returns the retiring ranks
/// (the root sends each a [`Msg::Retire`] before calling `rehost`).
fn plan_barrier(dc: &DriverCtx) -> Vec<usize> {
    let sh = &dc.sh;
    let barrier = sh.barrier.fetch_add(1, Ordering::SeqCst) + 1;
    let mut retiring = Vec::new();
    let mut out = PlanOut::default();
    {
        let peers = sh.peers.lock();
        for (i, p) in peers.iter().enumerate() {
            if !p.gone.load(Ordering::Acquire) && p.leave_at_barrier == Some(barrier) {
                retiring.extend_from_slice(&p.ranks);
                out.leaves.push(i);
            }
        }
    }
    {
        // admit at most one joiner per barrier, donating half the
        // driver-hosted controllers (universe size never changes: a
        // joiner adopts existing ranks)
        let mut joiners = sh.joiners.lock();
        if !joiners.is_empty() {
            let hosted: Vec<usize> = {
                let routes = sh.routes.lock();
                (dc.first_ctrl..dc.n_ranks)
                    .filter(|&r| matches!(routes[r], Route::Local(_)) && !retiring.contains(&r))
                    .collect()
            };
            if !hosted.is_empty() {
                let stream = joiners.pop_front().unwrap();
                let donate = hosted[..hosted.len().div_ceil(2)].to_vec();
                retiring.extend_from_slice(&donate);
                out.donations.push((stream, donate));
            }
        }
    }
    *sh.pending.lock() = out;
    retiring
}

/// Execute the membership changes planned at this barrier: re-host a
/// departing worker's ranks on the driver, hand donated ranks to an
/// admitted joiner. Runs on the root thread while every chain is paused,
/// so route rewrites cannot race with traffic toward the moving ranks.
fn rehost_barrier(dc: &Arc<DriverCtx>, snap: &RunSnapshot) {
    let sh = &dc.sh;
    let out = std::mem::take(&mut *sh.pending.lock());
    for i in out.leaves {
        let peer = Arc::clone(&sh.peers.lock()[i]);
        let deadline = Instant::now() + Duration::from_secs(30);
        let leftovers = loop {
            if let Some(l) = peer.bye.lock().take() {
                break l;
            }
            assert!(
                Instant::now() < deadline,
                "net driver: departing worker never sent Bye"
            );
            std::thread::sleep(Duration::from_millis(1));
        };
        let mut per_rank: HashMap<usize, Vec<Envelope<Msg>>> = HashMap::new();
        for (to, from, msg) in leftovers {
            per_rank.entry(to).or_default().push(Envelope { from, msg });
        }
        for &rank in &peer.ranks {
            let (tx, rx) = unbounded();
            for env in per_rank.remove(&rank).unwrap_or_default() {
                let _ = tx.send(env);
            }
            sh.routes.lock()[rank] = Route::Local(tx);
            let resume = snap.chains.iter().find(|c| c.rank == rank).cloned();
            let handle = spawn_controller_thread(dc, rank, rx, resume);
            sh.handles.lock().insert(rank, handle);
            sh.migrations.fetch_add(1, Ordering::Relaxed);
            sh.tracer.incr(Counter::NetMigrations);
        }
        debug_assert!(
            per_rank.is_empty(),
            "leftovers addressed outside the departing worker's ranks"
        );
    }
    for (stream, ranks) in out.donations {
        let mut ckpts = Vec::new();
        let mut leftovers: Vec<Leftover> = Vec::new();
        for &rank in &ranks {
            let handle = sh
                .handles
                .lock()
                .remove(&rank)
                .expect("net driver: donated rank has no thread");
            let mut ctx = handle
                .join()
                .expect("net driver: donated controller panicked")
                .expect("net driver: donated controller did not retire");
            for env in ctx.drain() {
                leftovers.push((rank, env.from, env.msg));
            }
            ckpts.push(
                snap.chains
                    .iter()
                    .find(|c| c.rank == rank)
                    .cloned()
                    .expect("net driver: snapshot missing donated rank"),
            );
        }
        let mut s = stream;
        write_frame(
            &mut s,
            &Frame::Assign {
                n_ranks: dc.n_ranks,
                ranks: ranks.clone(),
                config: dc.config.clone(),
                ckpts,
                leftovers,
            },
            &sh.tracer,
        )
        .expect("net driver: Assign to joiner failed");
        match read_frame(&mut s, &sh.tracer) {
            Ok(Frame::Ready) => {}
            other => panic!("net driver: joiner never became Ready: {other:?}"),
        }
        let writer = s.try_clone().expect("net driver: stream clone failed");
        let peer = Arc::new(PeerLink {
            writer: Mutex::new(writer),
            ranks: ranks.clone(),
            leave_at_barrier: None,
            bye: Mutex::new(None),
            gone: AtomicBool::new(false),
        });
        let idx = {
            let mut peers = sh.peers.lock();
            peers.push(Arc::clone(&peer));
            peers.len() - 1
        };
        {
            let mut routes = sh.routes.lock();
            for &rank in &ranks {
                routes[rank] = Route::Peer(idx);
                sh.migrations.fetch_add(1, Ordering::Relaxed);
                sh.tracer.incr(Counter::NetMigrations);
            }
        }
        let downlink = spawn_downlink(Arc::clone(sh), peer, s);
        sh.downlinks.lock().push(downlink);
    }
}

/// Driver-side options for [`NetDriver::run`].
pub struct NetDriverOptions {
    /// Worker processes to wait for at rendezvous (each is assigned a
    /// contiguous block of `n_controllers / workers` controller ranks;
    /// the remainder stays driver-hosted).
    pub workers: usize,
    /// Checkpoint every `every` top-level corrections (0 disables; the
    /// elastic protocol needs barriers, so joins/leaves require this
    /// and a `store`).
    pub every: usize,
    /// Snapshot store (also the recovery point on fail-stop).
    pub store: Option<Arc<RunStore>>,
    /// Configuration hash stamped into snapshots.
    pub config_hash: u64,
}

/// What a driver run produced.
pub struct NetReport {
    pub report: ParallelReport,
    /// Rank migrations executed (re-hosted + donated).
    pub migrations: u64,
    /// Sends dropped across the whole driver process (out-of-range,
    /// exited or departed destinations).
    pub dropped_sends: usize,
}

/// The driver endpoint: binds the rendezvous address, then `run`
/// assembles one logical universe from this process plus `workers`
/// connected worker processes.
pub struct NetDriver {
    listener: TcpListener,
}

impl NetDriver {
    pub fn bind(addr: &str) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (pass to workers; `bind("127.0.0.1:0")` picks
    /// a free port).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("net driver: no local addr")
    }

    /// Host the fixed ranks (and any controller remainder), run the full
    /// schedule and return the assembled report. Blocks until `workers`
    /// workers have connected, then until the run completes.
    pub fn run(
        self,
        factory: Arc<dyn LevelFactory>,
        config: &ParallelConfig,
        opts: &NetDriverOptions,
        tracer: &Tracer,
    ) -> NetReport {
        let n_ranks = config.n_ranks();
        let first_ctrl = config.first_controller_rank();
        let n_ctrl = n_ranks - first_ctrl;
        assert!(opts.workers >= 1, "net driver: need at least one worker");
        assert!(
            opts.workers <= n_ctrl,
            "net driver: more workers than controller ranks"
        );
        if opts.store.is_some() {
            assert!(
                !config.load_balancing,
                "net driver: checkpointing requires load_balancing = false"
            );
        }
        let start = Instant::now();

        // rendezvous: block until every initial worker said Hello
        let mut arrivals: Vec<(TcpStream, Option<u64>)> = Vec::new();
        let mut early_joiners: VecDeque<TcpStream> = VecDeque::new();
        while arrivals.len() < opts.workers {
            let (stream, _) = self.listener.accept().expect("net driver: accept failed");
            let _ = stream.set_nodelay(true);
            let mut s = stream;
            match read_frame(&mut s, tracer) {
                Ok(Frame::Hello {
                    join,
                    leave_at_barrier,
                    ..
                }) => {
                    if join {
                        early_joiners.push_back(s);
                    } else {
                        arrivals.push((s, leave_at_barrier));
                    }
                }
                other => panic!("net driver: bad worker handshake: {other:?}"),
            }
        }

        // contiguous rank blocks per worker; remainder stays here
        let per = n_ctrl / opts.workers;
        let (router_tx, router_rx) = unbounded::<(usize, Envelope<Msg>)>();
        let mut fixed_txs = Vec::new();
        let mut fixed_rxs: Vec<Option<crossbeam::channel::Receiver<Envelope<Msg>>>> = Vec::new();
        for _ in 0..first_ctrl {
            let (tx, rx) = unbounded();
            fixed_txs.push(tx);
            fixed_rxs.push(Some(rx));
        }
        let template: Vec<Outbox<Msg>> = (0..n_ranks)
            .map(|r| {
                if r < first_ctrl {
                    Outbox::Local(fixed_txs[r].clone())
                } else {
                    Outbox::Relay(router_tx.clone())
                }
            })
            .collect();
        drop(router_tx);
        let mut routes: Vec<Route> = (0..n_ranks)
            .map(|r| {
                if r < first_ctrl {
                    Route::Local(fixed_txs[r].clone())
                } else {
                    Route::Unwired
                }
            })
            .collect();
        let mut peers: Vec<Arc<PeerLink>> = Vec::new();
        let mut worker_streams = Vec::new();
        for (i, (stream, leave)) in arrivals.into_iter().enumerate() {
            let ranks: Vec<usize> = (first_ctrl + i * per..first_ctrl + (i + 1) * per).collect();
            for &r in &ranks {
                routes[r] = Route::Peer(i);
            }
            let writer = stream.try_clone().expect("net driver: stream clone failed");
            peers.push(Arc::new(PeerLink {
                writer: Mutex::new(writer),
                ranks,
                leave_at_barrier: leave,
                bye: Mutex::new(None),
                gone: AtomicBool::new(false),
            }));
            worker_streams.push(stream);
        }

        let dropped = Arc::new(AtomicUsize::new(0));
        let sh = Arc::new(DriverShared {
            routes: Mutex::new(routes),
            peers: Mutex::new(peers),
            joiners: Mutex::new(early_joiners),
            handles: Mutex::new(HashMap::new()),
            downlinks: Mutex::new(Vec::new()),
            pending: Mutex::new(PlanOut::default()),
            barrier: AtomicU64::new(0),
            dropped: Arc::clone(&dropped),
            shutdown: AtomicBool::new(false),
            tracer: tracer.clone(),
            migrations: AtomicU64::new(0),
        });
        let dc = Arc::new(DriverCtx {
            sh: Arc::clone(&sh),
            factory,
            config: config.clone(),
            template,
            n_ranks,
            first_ctrl,
        });

        // Assign each worker its block; Ready gates routing
        for (i, s) in worker_streams.iter_mut().enumerate() {
            let peer = Arc::clone(&sh.peers.lock()[i]);
            write_frame(
                &mut *peer.writer.lock(),
                &Frame::Assign {
                    n_ranks,
                    ranks: peer.ranks.clone(),
                    config: config.clone(),
                    ckpts: vec![],
                    leftovers: vec![],
                },
                tracer,
            )
            .expect("net driver: Assign failed");
            match read_frame(s, tracer) {
                Ok(Frame::Ready) => {}
                other => panic!("net driver: worker never became Ready: {other:?}"),
            }
        }
        for (i, s) in worker_streams.into_iter().enumerate() {
            let peer = Arc::clone(&sh.peers.lock()[i]);
            let downlink = spawn_downlink(Arc::clone(&sh), peer, s);
            sh.downlinks.lock().push(downlink);
        }
        let listener_handle = spawn_listener(Arc::clone(&sh), self.listener);
        let router_handle = {
            let sh2 = Arc::clone(&sh);
            std::thread::Builder::new()
                .name("uq-net-router".into())
                .spawn(move || {
                    for (to, env) in router_rx {
                        deliver(&sh2, to, env);
                    }
                })
                .expect("net driver: router thread spawn failed")
        };

        let ckpt_every = if opts.store.is_some() { opts.every } else { 0 };
        let mut fixed_handles = Vec::new();
        {
            let rx = fixed_rxs[PHONEBOOK].take().unwrap();
            let dc2 = Arc::clone(&dc);
            fixed_handles.push(
                std::thread::Builder::new()
                    .name("uq-net-phonebook".into())
                    .spawn(move || {
                        let mut ctx = RankCtx::from_parts(
                            PHONEBOOK,
                            dc2.n_ranks,
                            rx,
                            dc2.template.clone(),
                            Arc::clone(&dc2.sh.dropped),
                        );
                        phonebook_role(&mut ctx, &dc2.config, &dc2.sh.tracer, None);
                    })
                    .expect("net driver: phonebook thread spawn failed"),
            );
        }
        for level in 0..config.n_levels() {
            let rx = fixed_rxs[collector_rank(level)].take().unwrap();
            let dc2 = Arc::clone(&dc);
            fixed_handles.push(
                std::thread::Builder::new()
                    .name(format!("uq-net-collector-{level}"))
                    .spawn(move || {
                        let mut ctx = RankCtx::from_parts(
                            collector_rank(level),
                            dc2.n_ranks,
                            rx,
                            dc2.template.clone(),
                            Arc::clone(&dc2.sh.dropped),
                        );
                        collector_role(&mut ctx, level, &dc2.config, ckpt_every, None);
                    })
                    .expect("net driver: collector thread spawn failed"),
            );
        }
        for rank in first_ctrl + opts.workers * per..n_ranks {
            let (tx, rx) = unbounded();
            sh.routes.lock()[rank] = Route::Local(tx);
            let handle = spawn_controller_thread(&dc, rank, rx, None);
            sh.handles.lock().insert(rank, handle);
        }

        // the root runs on this thread so the elastic hooks can borrow
        let mut root_ctx = RankCtx::from_parts(
            ROOT,
            n_ranks,
            fixed_rxs[ROOT].take().unwrap(),
            dc.template.clone(),
            Arc::clone(&dropped),
        );
        let store_arc = opts.store.clone();
        let report = {
            let ckpt = store_arc.as_ref().map(|s| ParallelCheckpoint {
                store: s,
                config_hash: opts.config_hash,
                every: opts.every,
                on_snapshot: None,
                stop: None,
            });
            let plan = {
                let dc = Arc::clone(&dc);
                move |_snap: &RunSnapshot| plan_barrier(&dc)
            };
            let rehost = {
                let dc = Arc::clone(&dc);
                move |snap: &RunSnapshot, _retiring: &[usize]| rehost_barrier(&dc, snap)
            };
            let elastic = ElasticOps {
                plan: &plan,
                rehost: &rehost,
            };
            let elastic_opt = if ckpt.is_some() { Some(&elastic) } else { None };
            root_role(
                &mut root_ctx,
                config,
                start,
                tracer,
                ckpt.as_ref(),
                elastic_opt,
            )
        };

        // teardown: reap local ranks, then the wire machinery
        for h in fixed_handles {
            h.join().expect("net driver: fixed rank panicked");
        }
        let handles: Vec<_> = sh.handles.lock().drain().collect();
        for (_, h) in handles {
            let _ = h.join().expect("net driver: controller panicked");
        }
        sh.shutdown.store(true, Ordering::Release);
        for mut s in sh.joiners.lock().drain(..) {
            // never-admitted joiners: tell them the run is over
            let _ = write_frame(&mut s, &Frame::Bye { leftovers: vec![] }, tracer);
            let _ = s.shutdown(Shutdown::Both);
        }
        listener_handle
            .join()
            .expect("net driver: listener panicked");
        let downlinks: Vec<_> = sh.downlinks.lock().drain(..).collect();
        for h in downlinks {
            h.join().expect("net driver: downlink panicked");
        }
        // release the outbox template so the router's channel disconnects
        drop(root_ctx);
        drop(dc);
        router_handle.join().expect("net driver: router panicked");
        NetReport {
            report,
            migrations: sh.migrations.load(Ordering::Relaxed),
            dropped_sends: dropped.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

/// Worker-side options for [`run_net_worker`].
pub struct NetWorkerOptions {
    /// Driver rendezvous address (`host:port`).
    pub connect: String,
    /// Connect as an elastic joiner (admitted at a later checkpoint
    /// barrier) instead of an initial worker.
    pub join: bool,
    /// Declare a planned departure at the given checkpoint barrier
    /// (1-based); the driver re-hosts this worker's ranks there.
    pub leave_at_barrier: Option<u64>,
}

/// What a worker run did.
pub struct NetWorkerReport {
    /// Controller ranks this process hosted (empty if the run ended
    /// before a joiner was admitted).
    pub ranks: Vec<usize>,
    /// Ranks left via migration rather than normal run end.
    pub retired: bool,
}

/// Connect to a driver, host the assigned controller ranks and run them
/// to completion (or planned departure). Retries the connect for up to
/// 30 s so workers can start before the driver.
pub fn run_net_worker(
    factory: Arc<dyn LevelFactory>,
    opts: &NetWorkerOptions,
    tracer: &Tracer,
) -> NetWorkerReport {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut stream = loop {
        match TcpStream::connect(&opts.connect) {
            Ok(s) => break s,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "net worker: cannot reach driver at {}: {e}",
                    opts.connect
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    let _ = stream.set_nodelay(true);
    write_frame(
        &mut stream,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            join: opts.join,
            leave_at_barrier: opts.leave_at_barrier,
        },
        tracer,
    )
    .expect("net worker: handshake failed");
    let (n_ranks, ranks, config, ckpts, leftovers) = match read_frame(&mut stream, tracer) {
        Ok(Frame::Assign {
            n_ranks,
            ranks,
            config,
            ckpts,
            leftovers,
        }) => (n_ranks, ranks, config, ckpts, leftovers),
        // the run ended before this joiner was admitted
        Ok(Frame::Bye { .. }) => {
            return NetWorkerReport {
                ranks: vec![],
                retired: false,
            }
        }
        other => panic!("net worker: bad handshake reply: {other:?}"),
    };

    let dropped = Arc::new(AtomicUsize::new(0));
    let (uplink_tx, uplink_rx) = unbounded::<(usize, Envelope<Msg>)>();
    let mut local_txs: HashMap<usize, Sender<Envelope<Msg>>> = HashMap::new();
    let mut local_rxs = Vec::new();
    for &rank in &ranks {
        let (tx, rx) = unbounded();
        local_txs.insert(rank, tx);
        local_rxs.push((rank, rx));
    }
    // every remote destination shares the one uplink channel: the socket
    // then carries each local sender's full program order
    let template: Vec<Outbox<Msg>> = (0..n_ranks)
        .map(|r| match local_txs.get(&r) {
            Some(tx) => Outbox::Local(tx.clone()),
            None => Outbox::Relay(uplink_tx.clone()),
        })
        .collect();
    drop(uplink_tx);
    // pre-load migrated leftovers before any rank thread runs
    for (to, from, msg) in leftovers {
        local_txs
            .get(&to)
            .expect("net worker: leftover for a rank not assigned here")
            .send(Envelope { from, msg })
            .unwrap();
    }
    write_frame(&mut stream, &Frame::Ready, tracer).expect("net worker: Ready failed");

    let shutdown = Arc::new(AtomicBool::new(false));
    let uplink = {
        let mut writer = stream.try_clone().expect("net worker: stream clone failed");
        let tracer = tracer.clone();
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("uq-net-uplink".into())
            .spawn(move || {
                for (to, env) in uplink_rx {
                    let frame = Frame::Data {
                        to,
                        from: env.from,
                        msg: env.msg,
                    };
                    if let Err(e) = write_frame(&mut writer, &frame, &tracer) {
                        if shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        panic!("net worker: uplink write failed: {e}");
                    }
                }
            })
            .expect("net worker: uplink thread spawn failed")
    };
    let downlink = {
        let mut reader = stream.try_clone().expect("net worker: stream clone failed");
        let tracer = tracer.clone();
        let shutdown = Arc::clone(&shutdown);
        let txs = local_txs.clone();
        let dropped = Arc::clone(&dropped);
        std::thread::Builder::new()
            .name("uq-net-downlink".into())
            .spawn(move || loop {
                match read_frame(&mut reader, &tracer) {
                    Ok(Frame::Data { to, from, msg }) => match txs.get(&to) {
                        Some(tx) => {
                            if tx.send(Envelope { from, msg }).is_err() {
                                dropped.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        None => {
                            dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                    Ok(f) => panic!("net worker: unexpected frame: {f:?}"),
                    Err(e) => {
                        if shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        panic!("net worker: connection to driver lost: {e}");
                    }
                }
            })
            .expect("net worker: downlink thread spawn failed")
    };

    let config = Arc::new(config);
    let mut rank_threads = Vec::new();
    for (rank, rx) in local_rxs {
        let factory = Arc::clone(&factory);
        let config = Arc::clone(&config);
        let tracer = tracer.clone();
        let template = template.clone();
        let dropped = Arc::clone(&dropped);
        let resume = ckpts.iter().find(|c| c.rank == rank).cloned();
        rank_threads.push(
            std::thread::Builder::new()
                .name(format!("uq-net-ctrl-{rank}"))
                .spawn(move || {
                    LEVEL.with(|l| l.set(None));
                    let ctx = RankCtx::from_parts(rank, n_ranks, rx, template, dropped);
                    let level = resume
                        .as_ref()
                        .map_or_else(|| config.initial_level(rank), |c| c.level);
                    controller_role(ctx, &*factory, &config, &tracer, level, resume.as_ref())
                })
                .expect("net worker: rank thread spawn failed"),
        );
    }
    drop(local_txs);

    let mut retired = false;
    let mut leftover_out: Vec<Leftover> = Vec::new();
    for handle in rank_threads {
        if let Some(mut ctx) = handle.join().expect("net worker: rank thread panicked") {
            retired = true;
            let rank = ctx.rank();
            for env in ctx.drain() {
                leftover_out.push((rank, env.from, env.msg));
            }
        }
    }
    // quiesce the uplink (rank threads are gone, so the channel drains
    // and disconnects) before taking the write half back for the Bye
    drop(template);
    uplink.join().expect("net worker: uplink panicked");
    write_frame(
        &mut stream,
        &Frame::Bye {
            leftovers: leftover_out,
        },
        tracer,
    )
    .expect("net worker: Bye failed");
    shutdown.store(true, Ordering::Release);
    let _ = stream.shutdown(Shutdown::Both);
    downlink.join().expect("net worker: downlink panicked");
    NetWorkerReport { ranks, retired }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) -> Frame {
        decode_frame(&encode_frame(frame)).expect("roundtrip failed")
    }

    #[test]
    fn frame_roundtrips() {
        match roundtrip(&Frame::Hello {
            version: PROTOCOL_VERSION,
            join: true,
            leave_at_barrier: Some(3),
        }) {
            Frame::Hello {
                version,
                join,
                leave_at_barrier,
            } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert!(join);
                assert_eq!(leave_at_barrier, Some(3));
            }
            f => panic!("wrong frame: {f:?}"),
        }
        match roundtrip(&Frame::Data {
            to: 7,
            from: 4,
            msg: Msg::SampleReady { level: 1 },
        }) {
            Frame::Data { to, from, msg } => {
                assert_eq!((to, from), (7, 4));
                assert!(matches!(msg, Msg::SampleReady { level: 1 }));
            }
            f => panic!("wrong frame: {f:?}"),
        }
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let good = encode_frame(&Frame::Ready);
        assert!(decode_frame(&good[..good.len() - 1]).is_err());
        let mut flipped = good.clone();
        flipped[22] ^= 0x01;
        assert!(matches!(
            decode_frame(&flipped),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            decode_frame(&trailing),
            Err(StoreError::TrailingBytes(1))
        ));
        let mut bad_version = good;
        bad_version[8] = 99;
        assert!(matches!(
            decode_frame(&bad_version),
            Err(StoreError::BadVersion { found: 99 })
        ));
    }
}
