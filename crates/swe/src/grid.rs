//! Uniform Cartesian grid over a rectangular physical domain (meters).

/// A uniform `nx × ny` cell grid covering `[x0, x1] × [y0, y1]`.
///
/// Cell `(i, j)` has linear index `j·nx + i` (x fastest) and center
/// `(x0 + (i+½)dx, y0 + (j+½)dy)`.
#[derive(Clone, Debug)]
pub struct Grid2d {
    nx: usize,
    ny: usize,
    x0: f64,
    y0: f64,
    dx: f64,
    dy: f64,
}

impl Grid2d {
    /// Build a grid with `nx × ny` cells over the given extents.
    ///
    /// # Panics
    /// Panics for empty grids or inverted extents.
    pub fn new(nx: usize, ny: usize, x_range: (f64, f64), y_range: (f64, f64)) -> Self {
        assert!(nx > 0 && ny > 0, "Grid2d: need at least one cell");
        assert!(
            x_range.1 > x_range.0 && y_range.1 > y_range.0,
            "Grid2d: bad extents"
        );
        Self {
            nx,
            ny,
            x0: x_range.0,
            y0: y_range.0,
            dx: (x_range.1 - x_range.0) / nx as f64,
            dy: (y_range.1 - y_range.0) / ny as f64,
        }
    }

    pub fn nx(&self) -> usize {
        self.nx
    }

    pub fn ny(&self) -> usize {
        self.ny
    }

    pub fn dx(&self) -> f64 {
        self.dx
    }

    pub fn dy(&self) -> f64 {
        self.dy
    }

    /// Total cell count.
    pub fn n_cells(&self) -> usize {
        self.nx * self.ny
    }

    /// Linear index of cell `(i, j)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny);
        j * self.nx + i
    }

    /// Center coordinates of cell `(i, j)`.
    #[inline]
    pub fn center(&self, i: usize, j: usize) -> (f64, f64) {
        (
            self.x0 + (i as f64 + 0.5) * self.dx,
            self.y0 + (j as f64 + 0.5) * self.dy,
        )
    }

    /// Cell containing physical point `(x, y)`, clamped to the domain.
    pub fn locate(&self, x: f64, y: f64) -> (usize, usize) {
        let i = (((x - self.x0) / self.dx).floor().max(0.0) as usize).min(self.nx - 1);
        let j = (((y - self.y0) / self.dy).floor().max(0.0) as usize).min(self.ny - 1);
        (i, j)
    }

    /// Whether a physical point lies inside the domain.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x0
            && x <= self.x0 + self.dx * self.nx as f64
            && y >= self.y0
            && y <= self.y0 + self.dy * self.ny as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid2d {
        Grid2d::new(10, 5, (-100.0, 100.0), (0.0, 50.0))
    }

    #[test]
    fn spacing_and_counts() {
        let g = grid();
        assert_eq!(g.n_cells(), 50);
        assert!((g.dx() - 20.0).abs() < 1e-12);
        assert!((g.dy() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn centers_are_offset_half_cell() {
        let g = grid();
        assert_eq!(g.center(0, 0), (-90.0, 5.0));
        assert_eq!(g.center(9, 4), (90.0, 45.0));
    }

    #[test]
    fn locate_inverts_center() {
        let g = grid();
        for j in 0..5 {
            for i in 0..10 {
                let (x, y) = g.center(i, j);
                assert_eq!(g.locate(x, y), (i, j));
            }
        }
    }

    #[test]
    fn locate_clamps_outside_points() {
        let g = grid();
        assert_eq!(g.locate(-1e9, -1e9), (0, 0));
        assert_eq!(g.locate(1e9, 1e9), (9, 4));
    }

    #[test]
    fn contains_respects_bounds() {
        let g = grid();
        assert!(g.contains(0.0, 25.0));
        assert!(!g.contains(101.0, 25.0));
        assert!(!g.contains(0.0, -0.1));
    }
}
