//! # uq-swe
//!
//! A from-scratch 2-D shallow-water-equation solver and the synthetic
//! Tohoku tsunami inversion scenario — the role the ExaHyPE ADER-DG engine
//! plays in the paper:
//!
//! * [`grid`] — uniform Cartesian grids over a rectangular physical domain;
//! * [`flux`] — SWE physical fluxes, wave speeds and the Rusanov
//!   numerical flux;
//! * [`solver`] — well-balanced finite-volume scheme (hydrostatic
//!   reconstruction, Audusse et al.) with wetting/drying, plus a
//!   second-order predictor–corrector mode with piecewise-linear
//!   reconstruction and an **a-posteriori subcell finite-volume limiter**
//!   in the spirit of the paper's ADER-DG + MOOD limiter cascade
//!   (high-order where smooth, robust FV at coasts);
//! * [`bathymetry`] — synthetic Japan-trench-like bathymetry with the
//!   paper's three fidelity variants: depth-averaged (level 0), smoothed
//!   (level 1) and full (level 2);
//! * [`gauge`] — buoy time-series recording (sea-surface height anomaly)
//!   and the max-height/arrival-time observation operator;
//! * [`tohoku`] — the Bayesian source-inversion problem: infer the
//!   initial-displacement location from two buoys, with the paper's
//!   level-dependent Gaussian likelihood (Table 1) and cut-off prior,
//!   exposed as a [`uq_mcmc::SamplingProblem`] hierarchy.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod bathymetry;
pub mod flux;
pub mod gauge;
pub mod grid;
pub mod solver;
pub mod tohoku;

pub use gauge::Gauge;
pub use grid::Grid2d;
pub use solver::{Scheme, SweSolver, SweState};
pub use tohoku::{TsunamiHierarchy, TsunamiModel, TsunamiProblem};
