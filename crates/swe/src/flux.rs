//! Shallow-water physical fluxes and the Rusanov (local Lax–Friedrichs)
//! numerical flux with hydrostatic reconstruction for well-balancedness
//! (Audusse et al. 2004).

/// Gravitational acceleration (m/s²).
pub const G: f64 = 9.81;

/// Water depths below this are treated as dry.
pub const H_DRY: f64 = 1.0e-3;

/// Conserved state at a point: water depth and momenta.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cons {
    pub h: f64,
    pub hu: f64,
    pub hv: f64,
}

impl Cons {
    pub fn new(h: f64, hu: f64, hv: f64) -> Self {
        Self { h, hu, hv }
    }

    /// Velocity with dry-state regularization.
    #[inline]
    pub fn velocity(&self) -> (f64, f64) {
        if self.h <= H_DRY {
            (0.0, 0.0)
        } else {
            (self.hu / self.h, self.hv / self.h)
        }
    }

    /// Gravity wave speed `√(g h)`.
    #[inline]
    pub fn wave_speed(&self) -> f64 {
        (G * self.h.max(0.0)).sqrt()
    }
}

/// Physical flux in the x-direction:
/// `F = (hu, hu² + g h²/2, huv)`.
#[inline]
pub fn flux_x(q: Cons) -> Cons {
    let (u, v) = q.velocity();
    Cons {
        h: q.hu,
        hu: q.hu * u + 0.5 * G * q.h * q.h,
        hv: q.h * u * v,
    }
}

/// Physical flux in the y-direction:
/// `G = (hv, huv, hv² + g h²/2)`.
#[inline]
pub fn flux_y(q: Cons) -> Cons {
    let (u, v) = q.velocity();
    Cons {
        h: q.hv,
        hu: q.h * u * v,
        hv: q.hv * v + 0.5 * G * q.h * q.h,
    }
}

/// Maximum signal speed of the pair in direction `axis` (0 = x, 1 = y).
#[inline]
pub fn max_signal_speed(l: Cons, r: Cons, axis: usize) -> f64 {
    let (ul, vl) = l.velocity();
    let (ur, vr) = r.velocity();
    let nl = if axis == 0 { ul } else { vl };
    let nr = if axis == 0 { ur } else { vr };
    (nl.abs() + l.wave_speed()).max(nr.abs() + r.wave_speed())
}

/// Rusanov numerical flux in direction `axis`:
/// `F* = ½(F(l) + F(r)) − ½ s (r − l)`.
#[inline]
pub fn rusanov(l: Cons, r: Cons, axis: usize) -> Cons {
    let (fl, fr) = if axis == 0 {
        (flux_x(l), flux_x(r))
    } else {
        (flux_y(l), flux_y(r))
    };
    let s = max_signal_speed(l, r, axis);
    Cons {
        h: 0.5 * (fl.h + fr.h) - 0.5 * s * (r.h - l.h),
        hu: 0.5 * (fl.hu + fr.hu) - 0.5 * s * (r.hu - l.hu),
        hv: 0.5 * (fl.hv + fr.hv) - 0.5 * s * (r.hv - l.hv),
    }
}

/// Hydrostatic reconstruction of the interface states (Audusse et al.):
/// returns the reconstructed left/right states and the interface
/// bathymetry `b* = max(b_l, b_r)`. Combined with the source-term
/// correction in the solver this preserves lakes at rest exactly and
/// handles wetting/drying robustly.
#[inline]
pub fn hydrostatic_reconstruction(l: Cons, bl: f64, r: Cons, br: f64) -> (Cons, Cons, f64) {
    let b_star = bl.max(br);
    let hl_star = (l.h + bl - b_star).max(0.0);
    let hr_star = (r.h + br - b_star).max(0.0);
    let (ul, vl) = l.velocity();
    let (ur, vr) = r.velocity();
    (
        Cons::new(hl_star, hl_star * ul, hl_star * vl),
        Cons::new(hr_star, hr_star * ur, hr_star * vr),
        b_star,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn still_water_flux_is_pure_pressure() {
        let q = Cons::new(2.0, 0.0, 0.0);
        let f = flux_x(q);
        assert_eq!(f.h, 0.0);
        assert!((f.hu - 0.5 * G * 4.0).abs() < 1e-12);
        assert_eq!(f.hv, 0.0);
    }

    #[test]
    fn dry_state_has_zero_velocity() {
        let q = Cons::new(1e-6, 1.0, 1.0);
        assert_eq!(q.velocity(), (0.0, 0.0));
    }

    #[test]
    fn rusanov_consistent_with_physical_flux() {
        // F*(q, q) = F(q)
        let q = Cons::new(1.5, 0.75, -0.3);
        let f = rusanov(q, q, 0);
        let fx = flux_x(q);
        assert!((f.h - fx.h).abs() < 1e-12);
        assert!((f.hu - fx.hu).abs() < 1e-12);
        assert!((f.hv - fx.hv).abs() < 1e-12);
    }

    #[test]
    fn rusanov_upwinds_contact() {
        // pure advection of a depth jump moving right: flux should mix
        // both states with dissipation
        let l = Cons::new(2.0, 2.0, 0.0);
        let r = Cons::new(1.0, 1.0, 0.0);
        let f = rusanov(l, r, 0);
        // mean physical mass flux 1.5 plus dissipation 0.5·s·(h_l - h_r)
        let s = max_signal_speed(l, r, 0);
        assert!((f.h - (1.5 + 0.5 * s)).abs() < 1e-12, "mass flux {}", f.h);
    }

    #[test]
    fn signal_speed_dominates_velocities() {
        let l = Cons::new(1.0, 3.0, 0.0);
        let r = Cons::new(1.0, -3.0, 0.0);
        let s = max_signal_speed(l, r, 0);
        assert!((s - (3.0 + (G).sqrt())).abs() < 1e-12);
    }

    #[test]
    fn hydrostatic_reconstruction_lake_at_rest() {
        // equal surface elevation (h + b const), zero velocity: the
        // reconstructed states must be identical so the flux difference
        // cancels against the source correction
        let l = Cons::new(3.0, 0.0, 0.0); // b = -3, surface 0
        let r = Cons::new(1.0, 0.0, 0.0); // b = -1, surface 0
        let (ls, rs, b_star) = hydrostatic_reconstruction(l, -3.0, r, -1.0);
        assert_eq!(b_star, -1.0);
        assert!(
            (ls.h - rs.h).abs() < 1e-14,
            "lake at rest must reconstruct equal depths"
        );
        assert!((ls.h - 1.0).abs() < 1e-14);
    }

    #[test]
    fn hydrostatic_reconstruction_dry_wall() {
        // dry, high cell next to wet cell: reconstructed depth on the dry
        // side is zero (no spurious flux into the wall)
        let wet = Cons::new(1.0, 0.0, 0.0); // b = -1, surface 0
        let dry = Cons::new(0.0, 0.0, 0.0); // b = +5 (land)
        let (ws, ds, _) = hydrostatic_reconstruction(wet, -1.0, dry, 5.0);
        assert_eq!(ws.h, 0.0, "water below the wall crest does not flow");
        assert_eq!(ds.h, 0.0);
    }
}
