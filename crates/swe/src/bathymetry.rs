//! Synthetic Japan-trench-like bathymetry.
//!
//! The paper uses GEBCO bathymetry of the Tohoku region; we substitute an
//! analytic profile with the same qualitative features (DESIGN.md §1):
//! a deep ocean basin, a trench, a continental shelf rising to a coast on
//! the west, and gentle along-shore variation. Three fidelity variants
//! mirror the paper's level hierarchy:
//!
//! * **full** — the profile as-is (level 2);
//! * **smoothed** — transitions broadened so the subcell limiter triggers
//!   in fewer cells (level 1);
//! * **depth-averaged** — a single constant depth over the whole domain,
//!   removing wetting/drying entirely (level 0, "DG only").

use crate::grid::Grid2d;

/// Physical domain of the scenario in meters: 1000 km × 1000 km.
pub const DOMAIN: ((f64, f64), (f64, f64)) = ((-500_000.0, 500_000.0), (-500_000.0, 500_000.0));

/// Deep-ocean reference depth (m, negative down).
pub const OCEAN_DEPTH: f64 = -7_000.0;

/// Fidelity variants of the bathymetry across the model hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fidelity {
    /// Constant depth-average (paper level 0).
    DepthAveraged,
    /// Smoothed transitions (paper level 1).
    Smoothed,
    /// Full profile (paper level 2).
    Full,
}

/// Evaluate the synthetic bathymetry at a physical point.
///
/// `sharpness` scales the transition widths: 1.0 = full, < 1.0 = smoothed.
fn profile(x: f64, y: f64, sharpness: f64) -> f64 {
    let km = 1000.0;
    // coast on the west: land above -350 km, shelf down to the basin
    let coast_x = -350.0 * km + 20.0 * km * (y / (150.0 * km)).sin();
    let shelf_width = 120.0 * km / sharpness;
    let t = ((x - coast_x) / shelf_width).clamp(0.0, 1.0);
    // smoothstep from land (+80 m) down to the ocean depth
    let s = t * t * (3.0 - 2.0 * t);
    let mut b = 80.0 + (OCEAN_DEPTH - 80.0) * s;
    // trench: a deep trough east of the shelf
    let trench_x = -50.0 * km;
    let trench_width = 60.0 * km / sharpness.sqrt();
    let dxt = (x - trench_x) / trench_width;
    let dyt = y / (400.0 * km);
    b += -2_000.0 * (-(dxt * dxt) - dyt * dyt * 0.3).exp() * sharpness;
    // gentle seamounts in the basin
    b += 300.0 * sharpness * ((x / (180.0 * km)).sin() * (y / (230.0 * km)).cos()).powi(2);
    b
}

/// Evaluate the bathymetry variant at a point.
pub fn evaluate(fidelity: Fidelity, x: f64, y: f64) -> f64 {
    match fidelity {
        Fidelity::Full => profile(x, y, 1.0),
        Fidelity::Smoothed => profile(x, y, 0.45),
        Fidelity::DepthAveraged => depth_average(),
    }
}

/// The constant depth used by the level-0 model: the mean of the full
/// profile over the wet part of the domain (precomputed analytically-ish
/// by coarse quadrature, stable across calls).
pub fn depth_average() -> f64 {
    // coarse fixed quadrature of the full profile, wet cells only
    let n = 64;
    let ((x0, x1), (y0, y1)) = DOMAIN;
    let mut sum = 0.0;
    let mut count = 0usize;
    for j in 0..n {
        for i in 0..n {
            let x = x0 + (i as f64 + 0.5) / n as f64 * (x1 - x0);
            let y = y0 + (j as f64 + 0.5) / n as f64 * (y1 - y0);
            let b = profile(x, y, 1.0);
            if b < 0.0 {
                sum += b;
                count += 1;
            }
        }
    }
    sum / count as f64
}

/// Tabulate a bathymetry variant on a grid (cell centers).
pub fn tabulate(grid: &Grid2d, fidelity: Fidelity) -> Vec<f64> {
    let mut out = Vec::with_capacity(grid.n_cells());
    for j in 0..grid.ny() {
        for i in 0..grid.nx() {
            let (x, y) = grid.center(i, j);
            out.push(evaluate(fidelity, x, y));
        }
    }
    out
}

/// Whether the full-fidelity sea floor at `(x, y)` is dry land.
pub fn is_land(x: f64, y: f64) -> bool {
    evaluate(Fidelity::Full, x, y) >= 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn west_is_land_east_is_deep() {
        assert!(
            evaluate(Fidelity::Full, -480_000.0, 0.0) > 0.0,
            "west should be land"
        );
        assert!(
            evaluate(Fidelity::Full, 400_000.0, 0.0) < -5_000.0,
            "east should be deep ocean"
        );
    }

    #[test]
    fn trench_is_deeper_than_basin() {
        let trench = evaluate(Fidelity::Full, -50_000.0, 0.0);
        let basin = evaluate(Fidelity::Full, 400_000.0, 0.0);
        assert!(trench < basin, "trench {trench} vs basin {basin}");
    }

    #[test]
    fn depth_average_is_negative_constant() {
        let avg = depth_average();
        assert!(avg < -2_000.0 && avg > -8_000.0, "average depth {avg}");
        assert_eq!(evaluate(Fidelity::DepthAveraged, 0.0, 0.0), avg);
        assert_eq!(
            evaluate(Fidelity::DepthAveraged, 300_000.0, -200_000.0),
            avg
        );
    }

    #[test]
    fn smoothed_is_smoother_than_full() {
        // total variation along a shore-normal transect must be smaller
        // for the smoothed variant
        let tv = |fid: Fidelity| -> f64 {
            let mut prev = evaluate(fid, -500_000.0, 10_000.0);
            let mut acc = 0.0;
            for k in 1..500 {
                let x = -500_000.0 + k as f64 * 2_000.0;
                let b = evaluate(fid, x, 10_000.0);
                acc += (b - prev).abs();
                prev = b;
            }
            acc
        };
        // compare curvature proxy: sum of second differences
        let curv = |fid: Fidelity| -> f64 {
            let mut acc = 0.0;
            for k in 1..499 {
                let x = -500_000.0 + k as f64 * 2_000.0;
                let b0 = evaluate(fid, x - 2_000.0, 10_000.0);
                let b1 = evaluate(fid, x, 10_000.0);
                let b2 = evaluate(fid, x + 2_000.0, 10_000.0);
                acc += (b2 - 2.0 * b1 + b0).abs();
            }
            acc
        };
        assert!(tv(Fidelity::Smoothed) <= tv(Fidelity::Full) * 1.2);
        assert!(
            curv(Fidelity::Smoothed) < curv(Fidelity::Full),
            "smoothed profile should have less curvature"
        );
    }

    #[test]
    fn tabulate_matches_pointwise() {
        let grid = Grid2d::new(8, 8, DOMAIN.0, DOMAIN.1);
        let b = tabulate(&grid, Fidelity::Full);
        let (x, y) = grid.center(3, 5);
        assert_eq!(b[grid.idx(3, 5)], evaluate(Fidelity::Full, x, y));
    }

    #[test]
    fn land_classification() {
        assert!(is_land(-490_000.0, 0.0));
        assert!(!is_land(200_000.0, 0.0));
    }
}
