//! The synthetic Tohoku source-inversion scenario (paper Sections 3.2 and
//! 5.2).
//!
//! We infer the location `θ = (θ_x, θ_y)` (in km, relative to the
//! reference epicenter near the trench) of an instantaneous sea-floor
//! displacement from the max-wave-height/arrival-time readings of two
//! buoys. The three-level model hierarchy follows the paper's Table 2:
//!
//! | level | scheme              | bathymetry     | grid (paper) |
//! |-------|---------------------|----------------|--------------|
//! | 0     | order 2, no limiter | depth-averaged | 1/25         |
//! | 1     | order 2, limiter    | smoothed       | 1/79         |
//! | 2     | order 2, limiter    | full           | 1/241        |
//!
//! The likelihood is `N(μ_l, Σ_l)` on `[h_max^1, h_max^2, t^1, t^2]` with
//! the level-dependent Table-1 standard deviations; the prior cuts off
//! displacements too close to the domain boundary or on dry land
//! (assigned `-∞` log-density, the paper's "almost zero likelihood").

use crate::bathymetry::{self, Fidelity, DOMAIN};
use crate::gauge::{observation_vector, Gauge};
use crate::grid::Grid2d;
use crate::solver::{Boundary, Scheme, SweSolver, SweState};
use uq_mcmc::SamplingProblem;

/// Grid resolutions of the three levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// The paper's mesh widths: 25, 79, 241 cells per direction.
    Paper,
    /// Scaled-down default so the full Table-4 run fits a single machine.
    Reduced,
    /// Explicit cell counts per level.
    Custom([usize; 3]),
}

impl Resolution {
    pub fn cells(self, level: usize) -> usize {
        match self {
            Resolution::Paper => [25, 79, 241][level],
            Resolution::Reduced => [15, 31, 63][level],
            Resolution::Custom(c) => c[level],
        }
    }
}

/// Scenario constants.
pub mod constants {
    /// Reference epicenter (near the trench), meters.
    pub const SOURCE_REF: (f64, f64) = (-50_000.0, 0.0);
    /// θ is measured in km of displacement from the reference.
    pub const THETA_SCALE: f64 = 1_000.0;
    /// Uplift amplitude (m).
    pub const UPLIFT_AMPLITUDE: f64 = 5.0;
    /// Uplift half-widths (m): elongated along-trench (y).
    pub const UPLIFT_RADII: (f64, f64) = (60_000.0, 100_000.0);
    /// Buoy positions (meters), east/north-east of the source — the
    /// geometry of DART 21418 / 21419.
    pub const BUOYS: [(&str, f64, f64); 2] = [
        ("21418", 150_000.0, 50_000.0),
        ("21419", 350_000.0, 150_000.0),
    ];
    /// Simulated duration (s): 95 min, past the second buoy's peak.
    pub const T_END: f64 = 5_700.0;
    /// Prior cut-off half-width in θ units (km): the dark rectangle of
    /// the paper's Fig. 3.
    pub const PRIOR_HALFWIDTH: f64 = 150.0;
    /// Table-1 likelihood standard deviations per level:
    /// `[σ_h1, σ_h2, σ_t1, σ_t2]` (heights in m, times in minutes).
    pub const SIGMA: [[f64; 4]; 3] = [
        [0.15, 0.15, 2.5, 2.5],
        [0.1, 0.1, 1.5, 1.5],
        [0.1, 0.1, 0.75, 0.75],
    ];
}

/// Per-run cost diagnostics (Table 2 columns).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    pub timesteps: usize,
    pub dof_updates: u64,
    pub limited_cells: u64,
}

/// One level of the tsunami forward-model hierarchy.
pub struct TsunamiModel {
    level: usize,
    grid: Grid2d,
    bathy: Vec<f64>,
    scheme: Scheme,
    rest_state: SweState,
    evaluations: usize,
    last_stats: RunStats,
    /// When set, `forward` retains the full gauge series of the last run.
    pub record_series: bool,
    pub last_series: Vec<Vec<(f64, f64)>>,
}

impl TsunamiModel {
    /// Build the level-`level` model (0, 1 or 2) at the given resolution.
    pub fn new(level: usize, resolution: Resolution) -> Self {
        assert!(level < 3, "TsunamiModel: levels are 0, 1, 2");
        let n = resolution.cells(level);
        let grid = Grid2d::new(n, n, DOMAIN.0, DOMAIN.1);
        let fidelity = match level {
            0 => Fidelity::DepthAveraged,
            1 => Fidelity::Smoothed,
            _ => Fidelity::Full,
        };
        let scheme = match level {
            0 => Scheme::SecondOrder { limiter: false },
            _ => Scheme::SecondOrder { limiter: true },
        };
        let bathy = bathymetry::tabulate(&grid, fidelity);
        let rest_state = SweState::lake_at_rest(&bathy, 0.0);
        Self {
            level,
            grid,
            bathy,
            scheme,
            rest_state,
            evaluations: 0,
            last_stats: RunStats::default(),
            record_series: false,
            last_series: Vec::new(),
        }
    }

    pub fn level(&self) -> usize {
        self.level
    }

    pub fn grid(&self) -> &Grid2d {
        &self.grid
    }

    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Diagnostics of the most recent forward run.
    pub fn last_stats(&self) -> RunStats {
        self.last_stats
    }

    /// Whether the scheme uses the a-posteriori limiter.
    pub fn uses_limiter(&self) -> bool {
        matches!(self.scheme, Scheme::SecondOrder { limiter: true })
    }

    /// Physical source center for parameters `theta` (km offsets).
    pub fn source_center(theta: &[f64]) -> (f64, f64) {
        (
            constants::SOURCE_REF.0 + theta[0] * constants::THETA_SCALE,
            constants::SOURCE_REF.1 + theta[1] * constants::THETA_SCALE,
        )
    }

    /// Whether `theta` is physically admissible: inside the prior box and
    /// not on dry land (checked on the full bathymetry, like the paper).
    pub fn admissible(theta: &[f64]) -> bool {
        if theta[0].abs() > constants::PRIOR_HALFWIDTH
            || theta[1].abs() > constants::PRIOR_HALFWIDTH
        {
            return false;
        }
        let (sx, sy) = Self::source_center(theta);
        !bathymetry::is_land(sx, sy)
    }

    /// Run the tsunami and return the observation vector
    /// `[h_max^1, h_max^2, t^1 (min), t^2 (min)]`.
    pub fn forward(&mut self, theta: &[f64]) -> Vec<f64> {
        assert_eq!(theta.len(), 2, "TsunamiModel::forward: theta is 2-D");
        let (sx, sy) = Self::source_center(theta);
        let (rx, ry) = constants::UPLIFT_RADII;
        let mut solver = SweSolver::new(
            self.grid.clone(),
            self.bathy.clone(),
            self.rest_state.clone(),
            self.scheme,
            Boundary::Outflow,
        );
        let mut gauges: Vec<Gauge> = constants::BUOYS
            .iter()
            .map(|&(name, x, y)| Gauge::new(name, x, y))
            .collect();
        for g in &mut gauges {
            g.calibrate(&solver);
        }
        solver.displace_surface(|x, y| {
            let dx = (x - sx) / rx;
            let dy = (y - sy) / ry;
            constants::UPLIFT_AMPLITUDE * (-dx * dx - dy * dy).exp()
        });
        solver.run(constants::T_END, |s| {
            for g in &mut gauges {
                g.record(s);
            }
        });
        self.evaluations += 1;
        self.last_stats = RunStats {
            timesteps: solver.steps(),
            dof_updates: solver.dof_updates(),
            limited_cells: solver.limited_cells(),
        };
        if self.record_series {
            self.last_series = gauges.iter().map(|g| g.series().to_vec()).collect();
        }
        observation_vector(&gauges)
    }
}

/// The Bayesian source-inversion problem on one level.
pub struct TsunamiProblem {
    model: TsunamiModel,
    data: Vec<f64>,
    sigma: [f64; 4],
}

impl TsunamiProblem {
    pub fn new(model: TsunamiModel, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), 4, "TsunamiProblem: observation vector is 4-D");
        let sigma = constants::SIGMA[model.level()];
        Self { model, data, sigma }
    }

    pub fn model(&self) -> &TsunamiModel {
        &self.model
    }

    pub fn model_mut(&mut self) -> &mut TsunamiModel {
        &mut self.model
    }

    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

impl SamplingProblem for TsunamiProblem {
    fn dim(&self) -> usize {
        2
    }

    fn log_density(&mut self, theta: &[f64]) -> f64 {
        if !TsunamiModel::admissible(theta) {
            return f64::NEG_INFINITY;
        }
        let obs = self.model.forward(theta);
        obs.iter()
            .zip(&self.data)
            .zip(&self.sigma)
            .map(|((o, d), s)| uq_linalg::prob::normal_logpdf(*o, *d, *s))
            .sum()
    }

    /// The paper's QOI is the uncertain parameter itself.
    fn qoi(&mut self, theta: &[f64]) -> Vec<f64> {
        theta.to_vec()
    }

    fn qoi_dim(&self) -> usize {
        2
    }
}

/// The full three-level hierarchy as a [`uq_mlmcmc::LevelFactory`].
pub struct TsunamiHierarchy {
    resolution: Resolution,
    data: Vec<f64>,
    /// Subsampling rates ρ_0, ρ_1 (paper: 25 and 5).
    pub subsampling: [usize; 2],
}

impl TsunamiHierarchy {
    /// Build the hierarchy; synthetic buoy data is generated from the
    /// **finest** model at the reference source `θ = (0, 0)` (the paper's
    /// Galvez et al. location).
    pub fn new(resolution: Resolution) -> Self {
        let mut finest = TsunamiModel::new(2, resolution);
        let data = finest.forward(&[0.0, 0.0]);
        Self {
            resolution,
            data,
            subsampling: [25, 5],
        }
    }

    pub fn data(&self) -> &[f64] {
        &self.data
    }

    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Build the sampling problem for one level.
    pub fn problem_for(&self, level: usize) -> TsunamiProblem {
        TsunamiProblem::new(TsunamiModel::new(level, self.resolution), self.data.clone())
    }
}

impl uq_mlmcmc::LevelFactory for TsunamiHierarchy {
    fn n_levels(&self) -> usize {
        3
    }

    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(self.problem_for(level))
    }

    fn proposal(&self, _level: usize) -> Box<dyn uq_mcmc::Proposal> {
        // paper: Adaptive Metropolis with initial N(0, 10 I), adapting
        // every 100 steps (only consulted on level 0)
        Box::new(uq_mcmc::AdaptiveMetropolis::new(2, 10f64.sqrt(), 100))
    }

    fn subsampling_rate(&self, level: usize) -> usize {
        if level < 2 {
            self.subsampling[level]
        } else {
            0
        }
    }

    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0, 0.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: Resolution = Resolution::Custom([9, 13, 17]);

    #[test]
    fn forward_returns_physical_observations() {
        let mut model = TsunamiModel::new(0, TINY);
        let obs = model.forward(&[0.0, 0.0]);
        assert_eq!(obs.len(), 4);
        assert!(obs[0] > 0.0 && obs[1] > 0.0, "wave heights {obs:?}");
        assert!(
            obs[2] > 0.0 && obs[3] > obs[2],
            "farther buoy peaks later: {obs:?}"
        );
        assert!(obs[2] < 95.0 && obs[3] < 95.0, "times in minutes: {obs:?}");
    }

    #[test]
    fn nearer_buoy_sees_higher_wave() {
        let mut model = TsunamiModel::new(2, TINY);
        let obs = model.forward(&[0.0, 0.0]);
        assert!(
            obs[0] > obs[1],
            "buoy 21418 (near) should see a higher wave: {obs:?}"
        );
    }

    #[test]
    fn moving_source_changes_arrival_time() {
        let mut model = TsunamiModel::new(1, TINY);
        let near = model.forward(&[100.0, 50.0]); // closer to the buoys
        let far = model.forward(&[-100.0, -50.0]);
        assert!(
            near[2] < far[2],
            "closer source must arrive earlier: near {near:?} far {far:?}"
        );
    }

    #[test]
    fn admissibility_prior_cutoffs() {
        assert!(TsunamiModel::admissible(&[0.0, 0.0]));
        assert!(
            !TsunamiModel::admissible(&[200.0, 0.0]),
            "outside prior box"
        );
        assert!(
            !TsunamiModel::admissible(&[-160.0, 0.0]),
            "outside prior box (west)"
        );
        // a source on land: x = -400 km is behind the coast but inside ±150
        // is not reachable; instead verify land rejection via a point that
        // is in-box yet dry — none exists with halfwidth 150 around the
        // trench, so this guards the check stays consistent:
        assert!(TsunamiModel::admissible(&[-150.0, 0.0]));
    }

    #[test]
    fn unphysical_theta_gets_neg_infinity() {
        let h_data = vec![1.0, 0.5, 30.0, 60.0];
        let model = TsunamiModel::new(0, TINY);
        let mut p = TsunamiProblem::new(model, h_data);
        assert_eq!(p.log_density(&[1e3, 1e3]), f64::NEG_INFINITY);
        // admissible θ gives finite density (and runs the model)
        assert!(p.log_density(&[0.0, 0.0]).is_finite());
    }

    #[test]
    fn hierarchy_data_is_self_consistent_at_truth() {
        let h = TsunamiHierarchy::new(TINY);
        let mut p2 = h.problem_for(2);
        let mut p0 = h.problem_for(0);
        let at_truth_fine = p2.log_density(&[0.0, 0.0]);
        let off = p2.log_density(&[80.0, -80.0]);
        assert!(
            at_truth_fine > off,
            "finest-level posterior should peak at the data-generating point: {at_truth_fine} vs {off}"
        );
        // level 0 still produces a finite, informative density
        assert!(p0.log_density(&[0.0, 0.0]).is_finite());
    }

    #[test]
    fn finer_levels_cost_more() {
        let mut m0 = TsunamiModel::new(0, TINY);
        let mut m2 = TsunamiModel::new(2, TINY);
        m0.forward(&[0.0, 0.0]);
        m2.forward(&[0.0, 0.0]);
        assert!(
            m2.last_stats().dof_updates > m0.last_stats().dof_updates,
            "level 2 must update more DOFs"
        );
        assert!(m2.last_stats().timesteps >= m0.last_stats().timesteps);
    }

    #[test]
    fn limiter_only_on_upper_levels() {
        assert!(!TsunamiModel::new(0, TINY).uses_limiter());
        assert!(TsunamiModel::new(1, TINY).uses_limiter());
        assert!(TsunamiModel::new(2, TINY).uses_limiter());
    }

    #[test]
    fn series_recording_is_optional() {
        let mut model = TsunamiModel::new(0, TINY);
        model.forward(&[0.0, 0.0]);
        assert!(model.last_series.is_empty());
        model.record_series = true;
        model.forward(&[0.0, 0.0]);
        assert_eq!(model.last_series.len(), 2);
        assert!(!model.last_series[0].is_empty());
    }

    #[test]
    fn factory_interface_is_wired() {
        use uq_mlmcmc::LevelFactory;
        let h = TsunamiHierarchy::new(TINY);
        assert_eq!(h.n_levels(), 3);
        assert_eq!(h.subsampling_rate(0), 25);
        assert_eq!(h.subsampling_rate(1), 5);
        assert_eq!(h.starting_point(2), vec![0.0, 0.0]);
        let mut p = h.problem(0);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.qoi(&[1.0, 2.0]), vec![1.0, 2.0]);
    }
}
