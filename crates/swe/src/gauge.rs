//! Buoy gauges: record sea-surface-height-anomaly time series and extract
//! the paper's observation operator (max wave height + its arrival time,
//! per buoy — Table 1).

use crate::solver::SweSolver;

/// A virtual DART buoy at a fixed location.
#[derive(Clone, Debug)]
pub struct Gauge {
    /// Identifier (the paper uses NDBC numbers 21418 and 21419).
    pub name: String,
    pub x: f64,
    pub y: f64,
    /// Reference surface elevation subtracted from readings.
    reference: f64,
    /// Recorded `(time, ssha)` series.
    series: Vec<(f64, f64)>,
}

impl Gauge {
    pub fn new(name: impl Into<String>, x: f64, y: f64) -> Self {
        Self {
            name: name.into(),
            x,
            y,
            reference: 0.0,
            series: Vec::new(),
        }
    }

    /// Capture the undisturbed surface as the zero reference.
    pub fn calibrate(&mut self, solver: &SweSolver) {
        let (i, j) = solver.grid().locate(self.x, self.y);
        self.reference = solver.surface(solver.grid().idx(i, j));
    }

    /// Record the current sea-surface height anomaly.
    pub fn record(&mut self, solver: &SweSolver) {
        let (i, j) = solver.grid().locate(self.x, self.y);
        let eta = solver.surface(solver.grid().idx(i, j));
        self.series.push((solver.time(), eta - self.reference));
    }

    /// The recorded `(time, ssha)` series.
    pub fn series(&self) -> &[(f64, f64)] {
        &self.series
    }

    /// Maximum wave height and the time (s) at which it occurs.
    ///
    /// Returns `(0.0, 0.0)` for an empty series.
    pub fn max_height_and_time(&self) -> (f64, f64) {
        self.series.iter().fold(
            (0.0, 0.0),
            |(mh, mt), &(t, h)| if h > mh { (h, t) } else { (mh, mt) },
        )
    }

    pub fn clear(&mut self) {
        self.series.clear();
    }
}

/// The observation vector the paper's likelihood compares: for each gauge
/// `[max_height_1, max_height_2, t_max_1, t_max_2]` with times in
/// **minutes** (matching the magnitudes of Table 1's `μ`).
pub fn observation_vector(gauges: &[Gauge]) -> Vec<f64> {
    let mut heights = Vec::with_capacity(gauges.len());
    let mut times = Vec::with_capacity(gauges.len());
    for g in gauges {
        let (h, t) = g.max_height_and_time();
        heights.push(h);
        times.push(t / 60.0);
    }
    heights.extend_from_slice(&times);
    heights
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid2d;
    use crate::solver::{Boundary, Scheme, SweSolver, SweState};

    fn make_solver() -> SweSolver {
        let grid = Grid2d::new(20, 20, (0.0, 1000.0), (0.0, 1000.0));
        let bathy = vec![-100.0; grid.n_cells()];
        let state = SweState::lake_at_rest(&bathy, 0.0);
        SweSolver::new(grid, bathy, state, Scheme::FirstOrder, Boundary::Outflow)
    }

    #[test]
    fn calibrated_gauge_reads_zero_at_rest() {
        let solver = make_solver();
        let mut g = Gauge::new("21418", 500.0, 500.0);
        g.calibrate(&solver);
        g.record(&solver);
        assert_eq!(g.series()[0].1, 0.0);
    }

    #[test]
    fn gauge_sees_passing_wave() {
        let mut solver = make_solver();
        let mut g = Gauge::new("21418", 700.0, 500.0);
        g.calibrate(&solver);
        solver.displace_surface(|x, y| {
            let r2 = ((x - 500.0) / 80.0).powi(2) + ((y - 500.0) / 80.0).powi(2);
            1.0 * (-r2).exp()
        });
        for _ in 0..200 {
            solver.step();
            g.record(&solver);
            if solver.time() > 20.0 {
                break;
            }
        }
        let (h, t) = g.max_height_and_time();
        assert!(h > 0.02, "gauge should see the wave, max {h}");
        assert!(t > 0.0, "max must occur after t = 0");
    }

    #[test]
    fn observation_vector_layout() {
        let mut g1 = Gauge::new("a", 0.0, 0.0);
        let mut g2 = Gauge::new("b", 0.0, 0.0);
        g1.series = vec![(0.0, 0.1), (60.0, 0.5), (120.0, 0.2)];
        g2.series = vec![(0.0, 0.0), (60.0, 0.1), (300.0, 0.9)];
        let obs = observation_vector(&[g1, g2]);
        assert_eq!(obs, vec![0.5, 0.9, 1.0, 5.0]); // heights, then minutes
    }

    #[test]
    fn empty_series_yields_zeros() {
        let g = Gauge::new("empty", 0.0, 0.0);
        assert_eq!(g.max_height_and_time(), (0.0, 0.0));
    }
}
