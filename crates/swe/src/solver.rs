//! Well-balanced shallow-water solver with wetting/drying and an
//! a-posteriori subcell finite-volume limiter.
//!
//! Two schemes are provided, mirroring the paper's model hierarchy:
//!
//! * [`Scheme::FirstOrder`] — robust Godunov/Rusanov update with
//!   hydrostatic reconstruction (Audusse et al. 2004); exactly preserves
//!   lakes at rest, handles dry cells, unconditionally the fallback.
//! * [`Scheme::SecondOrder`] — piecewise-linear (minmod) reconstruction
//!   of surface elevation and velocities with a Heun (SSP-RK2)
//!   predictor–corrector step, playing the role of the paper's order-2
//!   ADER-DG scheme. With `limiter: true`, every candidate step is
//!   screened a-posteriori (negative depth / non-finite values / severe
//!   surface overshoots); the step is then *recomputed* with first-order
//!   fluxes on all faces of troubled cells — the MOOD-style "DG where
//!   smooth, FV at the coast" cascade of the paper, implemented on face
//!   fluxes so mass conservation is exact.

use crate::flux::{hydrostatic_reconstruction, rusanov, Cons, G, H_DRY};
use crate::grid::Grid2d;

/// Numerical scheme selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// First-order well-balanced finite volumes.
    FirstOrder,
    /// Second-order reconstruction; `limiter` enables the a-posteriori
    /// subcell FV fallback (required whenever drying can occur).
    SecondOrder { limiter: bool },
}

/// Boundary condition applied on all four domain edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Boundary {
    /// Solid wall: mirror depth, reflect normal momentum.
    Reflective,
    /// Zero-gradient outflow (open ocean).
    Outflow,
}

/// Conserved fields, struct-of-arrays over the grid cells.
#[derive(Clone, Debug)]
pub struct SweState {
    pub h: Vec<f64>,
    pub hu: Vec<f64>,
    pub hv: Vec<f64>,
}

impl SweState {
    /// Lake at rest for the given bathymetry: `h = max(0, η₀ - b)`.
    pub fn lake_at_rest(bathy: &[f64], eta0: f64) -> Self {
        let h: Vec<f64> = bathy.iter().map(|b| (eta0 - b).max(0.0)).collect();
        let n = h.len();
        Self {
            h,
            hu: vec![0.0; n],
            hv: vec![0.0; n],
        }
    }

    #[inline]
    pub fn cons(&self, idx: usize) -> Cons {
        Cons::new(self.h[idx], self.hu[idx], self.hv[idx])
    }

    #[inline]
    pub fn set(&mut self, idx: usize, q: Cons) {
        self.h[idx] = q.h;
        self.hu[idx] = q.hu;
        self.hv[idx] = q.hv;
    }

    /// Total water volume divided by the (uniform) cell area.
    pub fn total_depth(&self) -> f64 {
        self.h.iter().sum()
    }
}

/// Flux and hydrostatic-source data of one face.
#[derive(Clone, Copy, Debug, Default)]
struct FaceFlux {
    f: Cons,
    /// Reconstructed depth on the lower-index side (source term).
    hl_star: f64,
    /// Reconstructed depth on the higher-index side (source term).
    hr_star: f64,
    /// Cell-centered depths used to close the source telescoping.
    hl_cell: f64,
    hr_cell: f64,
}

/// The time-stepping solver.
pub struct SweSolver {
    grid: Grid2d,
    bathy: Vec<f64>,
    scheme: Scheme,
    boundary: Boundary,
    cfl: f64,
    state: SweState,
    time: f64,
    steps: usize,
    limited_cells: u64,
    dof_updates: u64,
}

impl SweSolver {
    /// Create a solver with the given bathymetry (one value per cell) and
    /// initial state.
    ///
    /// # Panics
    /// Panics on size mismatches.
    pub fn new(
        grid: Grid2d,
        bathy: Vec<f64>,
        state: SweState,
        scheme: Scheme,
        boundary: Boundary,
    ) -> Self {
        assert_eq!(bathy.len(), grid.n_cells(), "SweSolver: bathymetry size");
        assert_eq!(state.h.len(), grid.n_cells(), "SweSolver: state size");
        Self {
            grid,
            bathy,
            scheme,
            boundary,
            cfl: 0.45,
            state,
            time: 0.0,
            steps: 0,
            limited_cells: 0,
            dof_updates: 0,
        }
    }

    pub fn grid(&self) -> &Grid2d {
        &self.grid
    }

    pub fn state(&self) -> &SweState {
        &self.state
    }

    pub fn bathymetry(&self) -> &[f64] {
        &self.bathy
    }

    pub fn time(&self) -> f64 {
        self.time
    }

    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Cumulative number of cells recomputed by the a-posteriori limiter.
    pub fn limited_cells(&self) -> u64 {
        self.limited_cells
    }

    /// Cumulative degree-of-freedom updates (cells × stages × steps) —
    /// the paper's Table 2 cost metric.
    pub fn dof_updates(&self) -> u64 {
        self.dof_updates
    }

    /// Surface elevation `η = h + b` where wet, `b` where dry.
    pub fn surface(&self, idx: usize) -> f64 {
        if self.state.h[idx] > H_DRY {
            self.state.h[idx] + self.bathy[idx]
        } else {
            self.bathy[idx]
        }
    }

    /// Displace the sea surface (resting-lake tsunami initialization):
    /// adds `uplift(x, y)` to the water column of wet cells, mimicking an
    /// instantaneous sea-floor deformation transferred to the surface.
    pub fn displace_surface(&mut self, uplift: impl Fn(f64, f64) -> f64) {
        for j in 0..self.grid.ny() {
            for i in 0..self.grid.nx() {
                let idx = self.grid.idx(i, j);
                if self.state.h[idx] > H_DRY {
                    let (x, y) = self.grid.center(i, j);
                    self.state.h[idx] = (self.state.h[idx] + uplift(x, y)).max(0.0);
                }
            }
        }
    }

    /// Stable time step from the CFL condition.
    pub fn stable_dt(&self) -> f64 {
        let mut smax: f64 = 1e-8;
        for idx in 0..self.grid.n_cells() {
            let q = self.state.cons(idx);
            let (u, v) = q.velocity();
            let c = q.wave_speed();
            smax = smax.max(u.abs() + c).max(v.abs() + c);
        }
        self.cfl * self.grid.dx().min(self.grid.dy()) / smax
    }

    /// Ghost state for the domain boundary, mirroring `q` according to the
    /// boundary condition. `axis` is the face normal direction.
    #[inline]
    fn ghost(&self, q: Cons, axis: usize) -> Cons {
        match self.boundary {
            Boundary::Outflow => q,
            Boundary::Reflective => {
                if axis == 0 {
                    Cons::new(q.h, -q.hu, q.hv)
                } else {
                    Cons::new(q.h, q.hu, -q.hv)
                }
            }
        }
    }

    /// Minmod slope limiter.
    #[inline]
    fn minmod(a: f64, b: f64) -> f64 {
        if a * b <= 0.0 {
            0.0
        } else if a.abs() < b.abs() {
            a
        } else {
            b
        }
    }

    /// Piecewise-linear face values of (η, u, v) for every cell:
    /// returns `[west, east, south, north]` primitive triples per cell.
    /// Cells that are nearly dry (or have nearly dry neighbors) keep their
    /// cell-centered values (local first-order fallback for robustness).
    fn reconstruct(&self, state: &SweState) -> Vec<[[f64; 3]; 4]> {
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let prim = |idx: usize| -> [f64; 3] {
            let q = state.cons(idx);
            let (u, v) = q.velocity();
            [q.h + self.bathy[idx], u, v]
        };
        let mut out = vec![[[0.0; 3]; 4]; nx * ny];
        for j in 0..ny {
            for i in 0..nx {
                let idx = self.grid.idx(i, j);
                let c = prim(idx);
                let wet = |ii: usize, jj: usize| state.h[self.grid.idx(ii, jj)] > 10.0 * H_DRY;
                let self_wet = state.h[idx] > 10.0 * H_DRY;
                let e = if i + 1 < nx {
                    prim(self.grid.idx(i + 1, j))
                } else {
                    c
                };
                let w = if i > 0 {
                    prim(self.grid.idx(i - 1, j))
                } else {
                    c
                };
                let n = if j + 1 < ny {
                    prim(self.grid.idx(i, j + 1))
                } else {
                    c
                };
                let s = if j > 0 {
                    prim(self.grid.idx(i, j - 1))
                } else {
                    c
                };
                let neighbors_wet = self_wet
                    && (i + 1 >= nx || wet(i + 1, j))
                    && (i == 0 || wet(i - 1, j))
                    && (j + 1 >= ny || wet(i, j + 1))
                    && (j == 0 || wet(i, j - 1));
                let mut faces = [c, c, c, c];
                if neighbors_wet {
                    for k in 0..3 {
                        let sx = Self::minmod(e[k] - c[k], c[k] - w[k]);
                        let sy = Self::minmod(n[k] - c[k], c[k] - s[k]);
                        faces[0][k] = c[k] - 0.5 * sx; // west
                        faces[1][k] = c[k] + 0.5 * sx; // east
                        faces[2][k] = c[k] - 0.5 * sy; // south
                        faces[3][k] = c[k] + 0.5 * sy; // north
                    }
                }
                out[idx] = faces;
            }
        }
        out
    }

    /// Turn a primitive face triple into a conserved state against the
    /// cell's own bathymetry.
    #[inline]
    fn face_cons(prim: [f64; 3], b: f64) -> Cons {
        let h = (prim[0] - b).max(0.0);
        Cons::new(h, h * prim[1], h * prim[2])
    }

    /// Compute all face fluxes. `second_order` selects reconstructed face
    /// values; `fo_mask` (if given) forces first-order fluxes on any face
    /// adjacent to a masked cell.
    fn compute_fluxes(
        &self,
        state: &SweState,
        second_order: bool,
        fo_mask: Option<&[bool]>,
        fx: &mut Vec<FaceFlux>,
        fy: &mut Vec<FaceFlux>,
    ) {
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let recon = if second_order {
            Some(self.reconstruct(state))
        } else {
            None
        };
        let masked = |idx: usize| fo_mask.is_some_and(|m| m[idx]);
        fx.clear();
        fx.resize((nx + 1) * ny, FaceFlux::default());
        fy.clear();
        fy.resize(nx * (ny + 1), FaceFlux::default());
        // x-faces: face (i, j) sits between cells (i-1, j) and (i, j)
        for j in 0..ny {
            for fi in 0..=nx {
                let (ql, bl, qr, br, first_order);
                if fi == 0 {
                    let idx = self.grid.idx(0, j);
                    qr = state.cons(idx);
                    br = self.bathy[idx];
                    ql = self.ghost(qr, 0);
                    bl = br;
                    first_order = true;
                } else if fi == nx {
                    let idx = self.grid.idx(nx - 1, j);
                    ql = state.cons(idx);
                    bl = self.bathy[idx];
                    qr = self.ghost(ql, 0);
                    br = bl;
                    first_order = true;
                } else {
                    let il = self.grid.idx(fi - 1, j);
                    let ir = self.grid.idx(fi, j);
                    bl = self.bathy[il];
                    br = self.bathy[ir];
                    first_order = !second_order || masked(il) || masked(ir);
                    if first_order {
                        ql = state.cons(il);
                        qr = state.cons(ir);
                    } else {
                        let r = recon.as_ref().unwrap();
                        ql = Self::face_cons(r[il][1], bl); // east face of left cell
                        qr = Self::face_cons(r[ir][0], br); // west face of right cell
                    }
                }
                let _ = first_order;
                let (ls, rs, _) = hydrostatic_reconstruction(ql, bl, qr, br);
                fx[j * (nx + 1) + fi] = FaceFlux {
                    f: rusanov(ls, rs, 0),
                    hl_star: ls.h,
                    hr_star: rs.h,
                    hl_cell: ql.h,
                    hr_cell: qr.h,
                };
            }
        }
        // y-faces: face (i, j) sits between cells (i, j-1) and (i, j)
        for fj in 0..=ny {
            for i in 0..nx {
                let (ql, bl, qr, br);
                if fj == 0 {
                    let idx = self.grid.idx(i, 0);
                    qr = state.cons(idx);
                    br = self.bathy[idx];
                    ql = self.ghost(qr, 1);
                    bl = br;
                } else if fj == ny {
                    let idx = self.grid.idx(i, ny - 1);
                    ql = state.cons(idx);
                    bl = self.bathy[idx];
                    qr = self.ghost(ql, 1);
                    br = bl;
                } else {
                    let il = self.grid.idx(i, fj - 1);
                    let ir = self.grid.idx(i, fj);
                    bl = self.bathy[il];
                    br = self.bathy[ir];
                    let first_order = !second_order || masked(il) || masked(ir);
                    if first_order {
                        ql = state.cons(il);
                        qr = state.cons(ir);
                    } else {
                        let r = recon.as_ref().unwrap();
                        ql = Self::face_cons(r[il][3], bl); // north face of lower cell
                        qr = Self::face_cons(r[ir][2], br); // south face of upper cell
                    }
                }
                let (ls, rs, _) = hydrostatic_reconstruction(ql, bl, qr, br);
                fy[fj * nx + i] = FaceFlux {
                    f: rusanov(ls, rs, 1),
                    hl_star: ls.h,
                    hr_star: rs.h,
                    hl_cell: ql.h,
                    hr_cell: qr.h,
                };
            }
        }
    }

    /// One forward-Euler stage from `state` using precomputed flux arrays.
    fn apply_fluxes(
        &self,
        state: &SweState,
        fx: &[FaceFlux],
        fy: &[FaceFlux],
        dt: f64,
    ) -> SweState {
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let dx = self.grid.dx();
        let dy = self.grid.dy();
        let mut out = state.clone();
        for j in 0..ny {
            for i in 0..nx {
                let idx = self.grid.idx(i, j);
                let q = state.cons(idx);
                let fw = &fx[j * (nx + 1) + i];
                let fe = &fx[j * (nx + 1) + i + 1];
                let fs = &fy[j * nx + i];
                let fn_ = &fy[(j + 1) * nx + i];
                let dh = -(fe.f.h - fw.f.h) / dx - (fn_.f.h - fs.f.h) / dy;
                // hydrostatic source: east face uses this cell's left-side
                // reconstruction, west face the right side; the face-value
                // term telescopes with the cell-centered depth.
                let src_x = 0.5 * G / dx
                    * ((fe.hl_star * fe.hl_star - fe.hl_cell * fe.hl_cell)
                        + (fe.hl_cell * fe.hl_cell - q.h * q.h)
                        - (fw.hr_star * fw.hr_star - fw.hr_cell * fw.hr_cell)
                        - (fw.hr_cell * fw.hr_cell - q.h * q.h));
                let src_y = 0.5 * G / dy
                    * ((fn_.hl_star * fn_.hl_star - fn_.hl_cell * fn_.hl_cell)
                        + (fn_.hl_cell * fn_.hl_cell - q.h * q.h)
                        - (fs.hr_star * fs.hr_star - fs.hr_cell * fs.hr_cell)
                        - (fs.hr_cell * fs.hr_cell - q.h * q.h));
                let dhu = -(fe.f.hu - fw.f.hu) / dx - (fn_.f.hu - fs.f.hu) / dy + src_x;
                let dhv = -(fe.f.hv - fw.f.hv) / dx - (fn_.f.hv - fs.f.hv) / dy + src_y;
                let mut h = q.h + dt * dh;
                let mut hu = q.hu + dt * dhu;
                let mut hv = q.hv + dt * dhv;
                if h < H_DRY {
                    h = h.max(0.0);
                    hu = 0.0;
                    hv = 0.0;
                }
                out.set(idx, Cons::new(h, hu, hv));
            }
        }
        out
    }

    /// Full candidate step (Euler for first order, Heun/SSP-RK2 for second
    /// order), optionally forcing first-order fluxes around masked cells.
    fn candidate_step(&mut self, prev: &SweState, dt: f64, fo_mask: Option<&[bool]>) -> SweState {
        let second_order = matches!(self.scheme, Scheme::SecondOrder { .. });
        let mut fx = Vec::new();
        let mut fy = Vec::new();
        self.compute_fluxes(prev, second_order, fo_mask, &mut fx, &mut fy);
        let stage1 = self.apply_fluxes(prev, &fx, &fy, dt);
        self.dof_updates += self.grid.n_cells() as u64;
        if !second_order {
            return stage1;
        }
        self.compute_fluxes(&stage1, second_order, fo_mask, &mut fx, &mut fy);
        let stage2 = self.apply_fluxes(&stage1, &fx, &fy, dt);
        self.dof_updates += self.grid.n_cells() as u64;
        let mut mixed = prev.clone();
        for idx in 0..self.grid.n_cells() {
            let mut h = 0.5 * (prev.h[idx] + stage2.h[idx]);
            let mut hu = 0.5 * (prev.hu[idx] + stage2.hu[idx]);
            let mut hv = 0.5 * (prev.hv[idx] + stage2.hv[idx]);
            if h < H_DRY {
                h = h.max(0.0);
                hu = 0.0;
                hv = 0.0;
            }
            mixed.set(idx, Cons::new(h, hu, hv));
        }
        mixed
    }

    /// Whether a candidate cell value is admissible relative to the
    /// previous solution's local bounds (MOOD detection criteria).
    fn cell_admissible(&self, prev: &SweState, cand: &SweState, i: usize, j: usize) -> bool {
        let idx = self.grid.idx(i, j);
        let (h, hu, hv) = (cand.h[idx], cand.hu[idx], cand.hv[idx]);
        if !h.is_finite() || !hu.is_finite() || !hv.is_finite() || h < 0.0 {
            return false;
        }
        if h <= H_DRY {
            return true;
        }
        // discrete-maximum-principle check on the surface elevation with a
        // relaxed tolerance (strict DMP over-triggers on smooth waves)
        let eta = h + self.bathy[idx];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for dj in -1isize..=1 {
            for di in -1isize..=1 {
                let ni = i as isize + di;
                let nj = j as isize + dj;
                if ni < 0
                    || nj < 0
                    || ni >= self.grid.nx() as isize
                    || nj >= self.grid.ny() as isize
                {
                    continue;
                }
                let nidx = self.grid.idx(ni as usize, nj as usize);
                if prev.h[nidx] > H_DRY {
                    let neta = prev.h[nidx] + self.bathy[nidx];
                    lo = lo.min(neta);
                    hi = hi.max(neta);
                }
            }
        }
        if !lo.is_finite() {
            return true; // emerged from a fully dry neighborhood
        }
        let slack = 0.5 * (hi - lo) + 1e-3;
        eta >= lo - slack && eta <= hi + slack
    }

    /// Advance one time step; returns the step size used.
    pub fn step(&mut self) -> f64 {
        let dt = self.stable_dt();
        self.step_dt(dt);
        dt
    }

    /// Advance one step of prescribed size `dt`.
    pub fn step_dt(&mut self, dt: f64) {
        let use_limiter = matches!(self.scheme, Scheme::SecondOrder { limiter: true });
        let prev = self.state.clone();
        let mut cand = self.candidate_step(&prev, dt, None);
        if use_limiter {
            let mut mask = vec![false; self.grid.n_cells()];
            let mut troubled = 0u64;
            for j in 0..self.grid.ny() {
                for i in 0..self.grid.nx() {
                    if !self.cell_admissible(&prev, &cand, i, j) {
                        mask[self.grid.idx(i, j)] = true;
                        troubled += 1;
                    }
                }
            }
            if troubled > 0 {
                // conservative MOOD recompute: the whole step is redone
                // with first-order fluxes on the faces of troubled cells
                cand = self.candidate_step(&prev, dt, Some(&mask));
                self.limited_cells += troubled;
            }
        }
        self.state = cand;
        self.time += dt;
        self.steps += 1;
    }

    /// Run until `t_end`, invoking `observer(solver)` after every step.
    pub fn run(&mut self, t_end: f64, mut observer: impl FnMut(&SweSolver)) {
        while self.time < t_end - 1e-12 {
            let dt = self.stable_dt().min(t_end - self.time);
            self.step_dt(dt);
            observer(self);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_grid(n: usize) -> Grid2d {
        Grid2d::new(n, n, (0.0, 1000.0), (0.0, 1000.0))
    }

    /// Bumpy (partially emerged) bathymetry for well-balancing tests.
    fn bumpy_bathy(grid: &Grid2d) -> Vec<f64> {
        let mut b = Vec::with_capacity(grid.n_cells());
        for j in 0..grid.ny() {
            for i in 0..grid.nx() {
                let (x, y) = grid.center(i, j);
                let r2 = ((x - 500.0) / 150.0).powi(2) + ((y - 500.0) / 150.0).powi(2);
                // island peaking at +2 m above the η = 0 surface
                b.push(-10.0 + 12.0 * (-r2).exp());
            }
        }
        b
    }

    #[test]
    fn lake_at_rest_is_preserved_first_order() {
        let grid = flat_grid(16);
        let bathy = bumpy_bathy(&grid);
        let state = SweState::lake_at_rest(&bathy, 0.0);
        let mut solver =
            SweSolver::new(grid, bathy, state, Scheme::FirstOrder, Boundary::Reflective);
        for _ in 0..20 {
            solver.step();
        }
        for idx in 0..solver.grid().n_cells() {
            assert!(
                solver.state().hu[idx].abs() < 1e-10 && solver.state().hv[idx].abs() < 1e-10,
                "lake at rest generated momentum at cell {idx}: ({}, {})",
                solver.state().hu[idx],
                solver.state().hv[idx]
            );
        }
    }

    #[test]
    fn lake_at_rest_is_preserved_second_order() {
        let grid = flat_grid(16);
        let bathy = bumpy_bathy(&grid);
        let state = SweState::lake_at_rest(&bathy, 0.0);
        let mut solver = SweSolver::new(
            grid,
            bathy,
            state,
            Scheme::SecondOrder { limiter: true },
            Boundary::Reflective,
        );
        for _ in 0..20 {
            solver.step();
        }
        for idx in 0..solver.grid().n_cells() {
            assert!(
                solver.state().hu[idx].abs() < 1e-9 && solver.state().hv[idx].abs() < 1e-9,
                "2nd-order lake at rest broken at {idx}"
            );
        }
    }

    #[test]
    fn mass_is_conserved_with_walls_second_order() {
        let grid = flat_grid(20);
        let bathy = vec![-10.0; grid.n_cells()];
        let mut state = SweState::lake_at_rest(&bathy, 0.0);
        for j in 0..20 {
            for i in 0..20 {
                let idx = grid.idx(i, j);
                let (x, y) = grid.center(i, j);
                let r2 = ((x - 500.0) / 100.0).powi(2) + ((y - 500.0) / 100.0).powi(2);
                state.h[idx] += 1.0 * (-r2).exp();
            }
        }
        let mut solver = SweSolver::new(
            grid,
            bathy,
            state,
            Scheme::SecondOrder { limiter: true },
            Boundary::Reflective,
        );
        let mass0 = solver.state().total_depth();
        for _ in 0..60 {
            solver.step();
        }
        let mass1 = solver.state().total_depth();
        assert!(
            ((mass1 - mass0) / mass0).abs() < 1e-10,
            "mass drift: {mass0} → {mass1}"
        );
    }

    #[test]
    fn mass_is_conserved_first_order() {
        let grid = flat_grid(12);
        let bathy = vec![-5.0; grid.n_cells()];
        let mut state = SweState::lake_at_rest(&bathy, 0.0);
        state.h[grid.idx(6, 6)] += 2.0;
        let mut solver =
            SweSolver::new(grid, bathy, state, Scheme::FirstOrder, Boundary::Reflective);
        let mass0 = solver.state().total_depth();
        for _ in 0..40 {
            solver.step();
        }
        assert!(((solver.state().total_depth() - mass0) / mass0).abs() < 1e-12);
    }

    #[test]
    fn hump_spreads_symmetrically() {
        let grid = flat_grid(21);
        let bathy = vec![-10.0; grid.n_cells()];
        let mut state = SweState::lake_at_rest(&bathy, 0.0);
        for j in 0..21 {
            for i in 0..21 {
                let idx = grid.idx(i, j);
                let (x, y) = grid.center(i, j);
                let r2 = ((x - 500.0) / 80.0).powi(2) + ((y - 500.0) / 80.0).powi(2);
                state.h[idx] += 0.5 * (-r2).exp();
            }
        }
        let mut solver = SweSolver::new(
            grid,
            bathy,
            state,
            Scheme::SecondOrder { limiter: true },
            Boundary::Outflow,
        );
        for _ in 0..30 {
            solver.step();
        }
        // x/y symmetry: h(i,j) == h(j,i) for symmetric IC on square grid
        for j in 0..21 {
            for i in 0..21 {
                let a = solver.state().h[solver.grid().idx(i, j)];
                let b = solver.state().h[solver.grid().idx(j, i)];
                assert!((a - b).abs() < 1e-9, "asymmetry at ({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn dam_break_wave_moves_outward() {
        let grid = flat_grid(40);
        let bathy = vec![-100.0; grid.n_cells()];
        let mut state = SweState::lake_at_rest(&bathy, 0.0);
        // raise surface in the left half
        for j in 0..40 {
            for i in 0..20 {
                state.h[grid.idx(i, j)] += 1.0;
            }
        }
        let mut solver = SweSolver::new(grid, bathy, state, Scheme::FirstOrder, Boundary::Outflow);
        let dt_total: f64 = (0..10).map(|_| solver.step()).sum();
        let c = (G * 100.0f64).sqrt();
        let expected_travel = c * dt_total;
        assert!(expected_travel > 0.0);
        // cells just right of the initial dam (x = 500) should have risen
        let (i_probe, j_probe) = solver.grid().locate(510.0 + expected_travel / 2.0, 500.0);
        let idx = solver.grid().idx(i_probe, j_probe);
        assert!(
            solver.surface(idx) > 0.01,
            "wave has not reached probe: {}",
            solver.surface(idx)
        );
    }

    #[test]
    fn second_order_is_less_dissipative() {
        // identical Gaussian hump, same duration: the 2nd-order scheme
        // should retain a higher wave peak than the 1st-order scheme
        let make = |scheme: Scheme| -> SweSolver {
            let grid = flat_grid(40);
            let bathy = vec![-100.0; grid.n_cells()];
            let mut state = SweState::lake_at_rest(&bathy, 0.0);
            for j in 0..40 {
                for i in 0..40 {
                    let idx = grid.idx(i, j);
                    let (x, y) = grid.center(i, j);
                    let r2 = ((x - 500.0) / 60.0).powi(2) + ((y - 500.0) / 60.0).powi(2);
                    state.h[idx] += 1.0 * (-r2).exp();
                }
            }
            SweSolver::new(grid, bathy, state, scheme, Boundary::Outflow)
        };
        let mut fo = make(Scheme::FirstOrder);
        let mut so = make(Scheme::SecondOrder { limiter: false });
        fo.run(10.0, |_| {});
        so.run(10.0, |_| {});
        let peak =
            |s: &SweSolver| (0..s.grid().n_cells()).fold(0.0f64, |m, idx| m.max(s.surface(idx)));
        assert!(
            peak(&so) > peak(&fo),
            "2nd order peak {} should exceed 1st order {}",
            peak(&so),
            peak(&fo)
        );
    }

    #[test]
    fn displacement_generates_wave() {
        let grid = flat_grid(30);
        let bathy = vec![-1000.0; grid.n_cells()];
        let state = SweState::lake_at_rest(&bathy, 0.0);
        let mut solver = SweSolver::new(
            grid,
            bathy,
            state,
            Scheme::SecondOrder { limiter: false },
            Boundary::Outflow,
        );
        solver.displace_surface(|x, y| {
            let r2 = ((x - 500.0) / 100.0).powi(2) + ((y - 500.0) / 100.0).powi(2);
            2.0 * (-r2).exp()
        });
        let idx_src = {
            let (i, j) = solver.grid().locate(500.0, 500.0);
            solver.grid().idx(i, j)
        };
        assert!(solver.surface(idx_src) > 1.5, "displacement applied");
        let idx_probe = {
            let (i, j) = solver.grid().locate(800.0, 500.0);
            solver.grid().idx(i, j)
        };
        let mut max_probe: f64 = 0.0;
        for _ in 0..100 {
            solver.step();
            max_probe = max_probe.max(solver.surface(idx_probe));
            if solver.time() > 5.0 {
                break;
            }
        }
        assert!(
            max_probe > 0.01,
            "wave should reach the probe, max {max_probe}"
        );
    }

    #[test]
    fn limiter_activates_on_sharp_coastal_runup() {
        // steep coast + incoming wave: the second-order scheme must fall
        // back to FV in some cells
        let grid = Grid2d::new(40, 10, (0.0, 4000.0), (0.0, 1000.0));
        let mut bathy = Vec::with_capacity(grid.n_cells());
        for _j in 0..10 {
            for i in 0..40 {
                let (x, _) = grid.center(i, 0);
                bathy.push(if x < 3000.0 {
                    -50.0
                } else {
                    -50.0 + 55.0 * (x - 3000.0) / 1000.0
                });
            }
        }
        let mut state = SweState::lake_at_rest(&bathy, 0.0);
        for j in 0..10 {
            for i in 0..8 {
                state.h[grid.idx(i, j)] += 3.0;
            }
        }
        let mut solver = SweSolver::new(
            grid,
            bathy,
            state,
            Scheme::SecondOrder { limiter: true },
            Boundary::Outflow,
        );
        for _ in 0..200 {
            solver.step();
        }
        assert!(
            solver.limited_cells() > 0,
            "coastal run-up should trigger the a-posteriori limiter"
        );
        for &h in &solver.state().h {
            assert!(h.is_finite() && h >= 0.0);
        }
    }

    #[test]
    fn dof_updates_accumulate() {
        let grid = flat_grid(8);
        let bathy = vec![-10.0; grid.n_cells()];
        let state = SweState::lake_at_rest(&bathy, 0.0);
        let mut solver =
            SweSolver::new(grid, bathy, state, Scheme::FirstOrder, Boundary::Reflective);
        solver.step();
        solver.step();
        assert_eq!(solver.dof_updates(), 2 * 64);
        assert_eq!(solver.steps(), 2);
    }

    #[test]
    fn run_reaches_end_time_exactly() {
        let grid = flat_grid(8);
        let bathy = vec![-10.0; grid.n_cells()];
        let state = SweState::lake_at_rest(&bathy, 0.0);
        let mut solver =
            SweSolver::new(grid, bathy, state, Scheme::FirstOrder, Boundary::Reflective);
        let mut count = 0;
        solver.run(25.0, |_| count += 1);
        assert!((solver.time() - 25.0).abs() < 1e-9);
        assert_eq!(count, solver.steps());
    }
}
