//! # uq-linalg
//!
//! From-scratch numerical linear algebra kernels used by the parallel
//! multilevel MCMC stack: dense vectors/matrices, Cholesky and symmetric
//! eigen decompositions, CSR sparse matrices, Krylov solvers (CG, BiCGStab)
//! with Jacobi/SSOR preconditioners, a radix-2 FFT, Gauss–Legendre
//! quadrature and scalar root finding.
//!
//! The crate is dependency-light by design (only `rayon` for the parallel
//! sparse kernels) and every routine is exercised by unit and property tests.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod dense;
pub mod fft;
pub mod prob;
pub mod quadrature;
pub mod roots;
pub mod solvers;
pub mod sparse;
pub mod vector;

pub use dense::DenseMatrix;
pub use fft::Complex;
pub use solvers::{bicgstab, cg, IterativeResult, SolverOptions};
pub use sparse::{CooMatrix, CsrMatrix};
