//! # uq-linalg
//!
//! From-scratch numerical linear algebra kernels used by the parallel
//! multilevel MCMC stack: dense vectors/matrices, Cholesky and symmetric
//! eigen decompositions, CSR sparse matrices, Krylov solvers (CG, BiCGStab)
//! with Jacobi/SSOR preconditioners and allocation-free workspace-driven
//! variants, geometric multigrid on structured grids, a radix-2 FFT,
//! Gauss–Legendre quadrature and scalar root finding.
//!
//! The crate is dependency-light by design (`rayon` for the parallel
//! sparse kernels, `parking_lot` for the multigrid workspace lock) and
//! every routine is exercised by unit and property tests.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod dense;
pub mod fft;
pub mod mg;
pub mod prob;
pub mod quadrature;
pub mod roots;
pub mod solvers;
pub mod sparse;
pub mod vector;

pub use dense::DenseMatrix;
pub use fft::Complex;
pub use mg::{GmgHierarchy, GmgLevelSpec, Smoother};
pub use solvers::{
    bicgstab, bicgstab_into, cg, cg_into, IterativeResult, SolveStats, SolverOptions,
    SolverWorkspace,
};
pub use sparse::{CooMatrix, CsrMatrix};
