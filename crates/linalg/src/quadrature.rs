//! Gauss–Legendre quadrature on `[-1, 1]`, used by the Q1 FEM element
//! integrals and the nodal DG shallow-water scheme.

/// Nodes and weights of the `n`-point Gauss–Legendre rule on `[-1, 1]`.
///
/// Computed by Newton iteration on the Legendre polynomial `P_n` with the
/// Chebyshev-based initial guess; accurate to machine precision for the
/// small `n` used here.
///
/// # Panics
/// Panics for `n == 0`.
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n > 0, "gauss_legendre: need at least one node");
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // initial guess (Abramowitz & Stegun 25.4.30 style)
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut dp = 0.0;
        for _ in 0..100 {
            // evaluate P_n and P_n' by the three-term recurrence
            let mut p0 = 1.0;
            let mut p1 = x;
            for k in 2..=n {
                let p2 = ((2 * k - 1) as f64 * x * p1 - (k - 1) as f64 * p0) / k as f64;
                p0 = p1;
                p1 = p2;
            }
            // p1 = P_n(x), p0 = P_{n-1}(x)
            dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
            let dx = p1 / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        nodes[i] = -x;
        nodes[n - 1 - i] = x;
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        weights[i] = w;
        weights[n - 1 - i] = w;
    }
    if n == 1 {
        nodes[0] = 0.0;
        weights[0] = 2.0;
    }
    (nodes, weights)
}

/// Map a Gauss–Legendre rule to the interval `[a, b]`.
pub fn gauss_legendre_on(a: f64, b: f64, n: usize) -> (Vec<f64>, Vec<f64>) {
    let (xs, ws) = gauss_legendre(n);
    let mid = 0.5 * (a + b);
    let half = 0.5 * (b - a);
    (
        xs.iter().map(|x| mid + half * x).collect(),
        ws.iter().map(|w| w * half).collect(),
    )
}

/// Integrate `f` over `[a, b]` with an `n`-point rule.
pub fn integrate(f: impl Fn(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    let (xs, ws) = gauss_legendre_on(a, b, n);
    xs.iter().zip(&ws).map(|(x, w)| w * f(*x)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_interval_length() {
        for n in 1..=10 {
            let (_, ws) = gauss_legendre(n);
            assert!((ws.iter().sum::<f64>() - 2.0).abs() < 1e-13, "n = {n}");
        }
    }

    #[test]
    fn two_point_rule_is_exact_for_cubics() {
        // GL(n) is exact for polynomials of degree 2n-1
        let val = integrate(|x| x * x * x + x * x, -1.0, 1.0, 2);
        assert!((val - 2.0 / 3.0).abs() < 1e-14);
    }

    #[test]
    fn known_two_point_nodes() {
        let (xs, ws) = gauss_legendre(2);
        let g = 1.0 / 3.0_f64.sqrt();
        assert!((xs[0] + g).abs() < 1e-14);
        assert!((xs[1] - g).abs() < 1e-14);
        assert!((ws[0] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn known_three_point_nodes() {
        let (xs, ws) = gauss_legendre(3);
        assert!((xs[1]).abs() < 1e-14);
        assert!((xs[2] - (0.6f64).sqrt()).abs() < 1e-13);
        assert!((ws[1] - 8.0 / 9.0).abs() < 1e-13);
    }

    #[test]
    fn exactness_degree_2n_minus_1() {
        for n in 1..=8 {
            let deg = 2 * n - 1;
            // integral of x^deg over [0,1] is 1/(deg+1)
            let val = integrate(|x| x.powi(deg as i32), 0.0, 1.0, n);
            assert!(
                (val - 1.0 / (deg + 1) as f64).abs() < 1e-12,
                "n = {n}, deg = {deg}, got {val}"
            );
        }
    }

    #[test]
    fn smooth_integrand_converges() {
        let exact = 1.0 - (-1.0f64).exp(); // ∫₀¹ e^{-x} dx = 1 - e^{-1}
        let val = integrate(|x| (-x).exp(), 0.0, 1.0, 8);
        assert!((val - exact).abs() < 1e-12);
    }

    #[test]
    fn interval_mapping() {
        // ∫₂⁵ x dx = 10.5
        let val = integrate(|x| x, 2.0, 5.0, 2);
        assert!((val - 10.5).abs() < 1e-13);
    }
}
