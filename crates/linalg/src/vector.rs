//! Dense vector kernels.
//!
//! Vectors are plain `&[f64]` / `&mut [f64]` slices so callers can own their
//! storage (`Vec<f64>`, arena slices, matrix rows) without conversions.

/// Dot product `x · y`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm `‖x‖∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// `y ← a·x + y`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `y ← x + b·y` (the BiCG-style update, aliasing-free).
#[inline]
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + b * *yi;
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Element-wise difference `x - y` as a new vector.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Element-wise sum `x + y` as a new vector.
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Arithmetic mean of the entries; `0.0` for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Unbiased sample variance; `0.0` for fewer than two entries.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (x.len() - 1) as f64
}

/// Maximum absolute difference between two vectors.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff: length mismatch");
    x.iter().zip(y).fold(0.0, |m, (a, b)| m.max((a - b).abs()))
}

/// Linearly spaced grid of `n` points covering `[a, b]` inclusively.
///
/// `n == 1` returns `[a]`.
pub fn linspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(n > 0, "linspace: need at least one point");
    if n == 1 {
        return vec![a];
    }
    let h = (b - a) / (n - 1) as f64;
    (0..n).map(|i| a + h * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn dot_simple() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn norm_of_unit() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn norm_inf_picks_largest_abs() {
        assert_eq!(norm_inf(&[-7.0, 3.0, 5.0]), 7.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn xpby_matches_definition() {
        let mut y = vec![10.0, 20.0];
        xpby(&[1.0, 2.0], 0.5, &mut y);
        assert_eq!(y, vec![6.0, 12.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn mean_and_variance() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&x) - 2.5).abs() < 1e-15);
        // unbiased variance of 1..4 is 5/3
        assert!((variance(&x) - 5.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn variance_degenerate_cases() {
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[42.0]), 0.0);
    }

    #[test]
    fn linspace_endpoints_and_spacing() {
        let g = linspace(0.0, 1.0, 5);
        assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(linspace(2.0, 9.0, 1), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![0.5, -0.5, 4.0];
        let s = add(&x, &y);
        let d = sub(&s, &y);
        assert!(max_abs_diff(&d, &x) < 1e-15);
    }
}
