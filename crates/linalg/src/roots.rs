//! Scalar root finding: bracketing bisection with a Newton polish step.
//! Used to solve the transcendental eigenvalue equations of the exponential
//! covariance kernel in the Karhunen–Loève expansion.

/// Find a root of `f` in the bracket `[a, b]` by bisection.
///
/// Requires `f(a)` and `f(b)` to have opposite signs (a zero endpoint is
/// returned immediately). Converges to `tol` in the bracket width.
///
/// # Panics
/// Panics if the bracket does not straddle a sign change.
pub fn bisect(f: impl Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> f64 {
    let (mut lo, mut hi) = (a, b);
    let flo = f(lo);
    if flo == 0.0 {
        return lo;
    }
    let fhi = f(hi);
    if fhi == 0.0 {
        return hi;
    }
    assert!(
        flo * fhi < 0.0,
        "bisect: f({a}) = {flo} and f({b}) = {fhi} do not bracket a root"
    );
    let mut flo = flo;
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if fm == 0.0 {
            return mid;
        }
        if flo * fm < 0.0 {
            hi = mid;
        } else {
            lo = mid;
            flo = fm;
        }
    }
    0.5 * (lo + hi)
}

/// Bisection followed by a few Newton steps with a numerical derivative,
/// for roots that need tighter-than-bracket accuracy.
pub fn bisect_refine(f: impl Fn(f64) -> f64, a: f64, b: f64) -> f64 {
    let mut x = bisect(&f, a, b, 1e-10);
    for _ in 0..4 {
        let h = 1e-7 * x.abs().max(1e-7);
        let df = (f(x + h) - f(x - h)) / (2.0 * h);
        if df.abs() < 1e-300 {
            break;
        }
        let step = f(x) / df;
        let xn = x - step;
        if xn >= a && xn <= b {
            x = xn;
        }
        if step.abs() < 1e-15 {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_sqrt_two() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12);
        assert!((r - 2.0f64.sqrt()).abs() < 1e-11);
    }

    #[test]
    fn exact_endpoint_root() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12), 1.0);
    }

    #[test]
    fn refine_hits_machine_precision() {
        let r = bisect_refine(|x| x.cos(), 1.0, 2.0);
        assert!((r - std::f64::consts::FRAC_PI_2).abs() < 1e-14);
    }

    #[test]
    fn transcendental_kl_type_equation() {
        // tan(w) = 2 c w / (c^2 w^2 - 1) style equation from the exponential
        // kernel; root between 0 and pi for c = 1/0.15.
        let c = 1.0 / 0.15;
        let f = |w: f64| (c * c * w * w - 1.0) * w.sin() - 2.0 * c * w * w.cos();
        let r = bisect_refine(f, 1e-6, std::f64::consts::PI - 1e-6);
        assert!(f(r).abs() < 1e-8);
        assert!(r > 0.0 && r < std::f64::consts::PI);
    }

    #[test]
    #[should_panic(expected = "bracket")]
    fn rejects_non_bracketing_interval() {
        bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12);
    }
}
