//! Krylov solvers: preconditioned conjugate gradients for the SPD FEM
//! systems and BiCGStab as a fallback for non-symmetric operators.

use crate::sparse::CsrMatrix;
use crate::vector::{axpy, dot, norm2, xpby};

/// Preconditioner interface: computes `z ≈ A⁻¹ r`.
pub trait Preconditioner: Sync {
    fn apply(&self, r: &[f64]) -> Vec<f64>;
}

/// No-op preconditioner.
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        r.to_vec()
    }
}

/// Jacobi (diagonal) preconditioner.
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Build from the matrix diagonal.
    ///
    /// # Panics
    /// Panics if any diagonal entry is zero.
    pub fn new(a: &CsrMatrix) -> Self {
        let inv_diag = a
            .diagonal()
            .into_iter()
            .map(|d| {
                assert!(d != 0.0, "JacobiPrecond: zero diagonal entry");
                1.0 / d
            })
            .collect();
        Self { inv_diag }
    }
}

impl Preconditioner for JacobiPrecond {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        r.iter()
            .zip(&self.inv_diag)
            .map(|(ri, di)| ri * di)
            .collect()
    }
}

/// Symmetric SOR preconditioner (one forward + one backward sweep).
pub struct SsorPrecond {
    a: CsrMatrix,
    omega: f64,
}

impl SsorPrecond {
    /// `omega` is the relaxation parameter in `(0, 2)`; `1.0` gives
    /// symmetric Gauss–Seidel.
    pub fn new(a: &CsrMatrix, omega: f64) -> Self {
        assert!(
            omega > 0.0 && omega < 2.0,
            "SsorPrecond: omega must be in (0,2)"
        );
        Self {
            a: a.clone(),
            omega,
        }
    }
}

impl Preconditioner for SsorPrecond {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        self.a.ssor_apply(r, self.omega)
    }
}

/// Iteration controls shared by the Krylov solvers.
#[derive(Clone, Copy, Debug)]
pub struct SolverOptions {
    /// Relative residual reduction target `‖r‖/‖b‖ ≤ rel_tol`.
    pub rel_tol: f64,
    /// Absolute residual target (guards the `b = 0` case).
    pub abs_tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            rel_tol: 1e-10,
            abs_tol: 1e-14,
            max_iter: 10_000,
        }
    }
}

/// Outcome of an iterative solve.
#[derive(Clone, Debug)]
pub struct IterativeResult {
    /// Solution vector.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final (true) residual norm.
    pub residual: f64,
    /// Whether the tolerance was met within `max_iter`.
    pub converged: bool,
}

/// Preconditioned conjugate gradient method for SPD `A`.
pub fn cg(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    precond: &dyn Preconditioner,
    opts: SolverOptions,
) -> IterativeResult {
    let n = b.len();
    assert_eq!(a.rows(), n, "cg: dimension mismatch");
    let mut x = x0.map_or_else(|| vec![0.0; n], <[f64]>::to_vec);
    let mut ax = vec![0.0; n];
    a.matvec_into(&x, &mut ax);
    let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
    let b_norm = norm2(b).max(opts.abs_tol);
    let target = (opts.rel_tol * b_norm).max(opts.abs_tol);

    let mut z = precond.apply(&r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];
    let mut iterations = 0;
    let mut res = norm2(&r);
    while res > target && iterations < opts.max_iter {
        a.matvec_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            // loss of positive definiteness (or numerically zero direction)
            break;
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        res = norm2(&r);
        iterations += 1;
        if res <= target {
            break;
        }
        z = precond.apply(&r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        xpby(&z, beta, &mut p);
    }
    IterativeResult {
        x,
        iterations,
        residual: res,
        converged: res <= target,
    }
}

/// BiCGStab for general (possibly nonsymmetric) `A`.
pub fn bicgstab(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    precond: &dyn Preconditioner,
    opts: SolverOptions,
) -> IterativeResult {
    let n = b.len();
    assert_eq!(a.rows(), n, "bicgstab: dimension mismatch");
    let mut x = x0.map_or_else(|| vec![0.0; n], <[f64]>::to_vec);
    let mut ax = vec![0.0; n];
    a.matvec_into(&x, &mut ax);
    let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
    let r_hat = r.clone();
    let b_norm = norm2(b).max(opts.abs_tol);
    let target = (opts.rel_tol * b_norm).max(opts.abs_tol);

    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut iterations = 0;
    let mut res = norm2(&r);
    while res > target && iterations < opts.max_iter {
        let rho_new = dot(&r_hat, &r);
        if rho_new.abs() < 1e-300 {
            break;
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + beta (p - omega v)
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        let ph = precond.apply(&p);
        a.matvec_into(&ph, &mut v);
        let rhv = dot(&r_hat, &v);
        if rhv.abs() < 1e-300 {
            break;
        }
        alpha = rho / rhv;
        let s: Vec<f64> = (0..n).map(|i| r[i] - alpha * v[i]).collect();
        if norm2(&s) <= target {
            axpy(alpha, &ph, &mut x);
            res = norm2(&s);
            iterations += 1;
            break;
        }
        let sh = precond.apply(&s);
        let mut t = vec![0.0; n];
        a.matvec_into(&sh, &mut t);
        let tt = dot(&t, &t);
        if tt.abs() < 1e-300 {
            break;
        }
        omega = dot(&t, &s) / tt;
        for i in 0..n {
            x[i] += alpha * ph[i] + omega * sh[i];
            r[i] = s[i] - omega * t[i];
        }
        res = norm2(&r);
        iterations += 1;
        if omega.abs() < 1e-300 {
            break;
        }
    }
    IterativeResult {
        x,
        iterations,
        residual: res,
        converged: res <= target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CooMatrix;

    /// 1-D Laplacian (tridiagonal 2,-1) of order `n`.
    fn laplacian(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        coo.to_csr()
    }

    /// Nonsymmetric convection-diffusion-like operator.
    fn nonsym(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 3.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.5);
                coo.push(i + 1, i, -0.5);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn cg_solves_laplacian() {
        let a = laplacian(50);
        let x_true: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).sin()).collect();
        let b = a.matvec(&x_true);
        let r = cg(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        assert!(r.converged, "cg failed: residual {}", r.residual);
        assert!(crate::vector::max_abs_diff(&r.x, &x_true) < 1e-7);
    }

    #[test]
    fn cg_with_jacobi_converges_not_slower() {
        let a = laplacian(80);
        let b = vec![1.0; 80];
        let plain = cg(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        let pre = JacobiPrecond::new(&a);
        let jac = cg(&a, &b, None, &pre, SolverOptions::default());
        assert!(plain.converged && jac.converged);
        // Jacobi = scaled identity here, so same iteration count; just sanity
        assert!(jac.iterations <= plain.iterations + 2);
    }

    #[test]
    fn cg_with_ssor_reduces_iterations() {
        let a = laplacian(120);
        let b = vec![1.0; 120];
        let plain = cg(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        let pre = SsorPrecond::new(&a, 1.2);
        let ssor = cg(&a, &b, None, &pre, SolverOptions::default());
        assert!(ssor.converged);
        assert!(
            ssor.iterations < plain.iterations,
            "SSOR ({}) should beat plain CG ({})",
            ssor.iterations,
            plain.iterations
        );
    }

    #[test]
    fn cg_zero_rhs_returns_zero() {
        let a = laplacian(10);
        let r = cg(
            &a,
            &[0.0; 10],
            None,
            &IdentityPrecond,
            SolverOptions::default(),
        );
        assert!(r.converged);
        assert!(crate::vector::norm2(&r.x) < 1e-12);
    }

    #[test]
    fn cg_warm_start_uses_initial_guess() {
        let a = laplacian(30);
        let x_true: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b = a.matvec(&x_true);
        let cold = cg(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        let warm = cg(
            &a,
            &b,
            Some(&x_true),
            &IdentityPrecond,
            SolverOptions::default(),
        );
        assert_eq!(
            warm.iterations, 0,
            "exact warm start should converge immediately"
        );
        assert!(cold.iterations > 0);
    }

    #[test]
    fn cg_respects_max_iter() {
        let a = laplacian(200);
        let b = vec![1.0; 200];
        let opts = SolverOptions {
            max_iter: 3,
            ..Default::default()
        };
        let r = cg(&a, &b, None, &IdentityPrecond, opts);
        assert!(!r.converged);
        assert_eq!(r.iterations, 3);
    }

    #[test]
    fn bicgstab_solves_nonsymmetric() {
        let a = nonsym(60);
        let x_true: Vec<f64> = (0..60).map(|i| ((i * 7) % 11) as f64 / 11.0).collect();
        let b = a.matvec(&x_true);
        let r = bicgstab(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        assert!(r.converged, "bicgstab failed: residual {}", r.residual);
        assert!(crate::vector::max_abs_diff(&r.x, &x_true) < 1e-6);
    }

    #[test]
    fn bicgstab_matches_cg_on_spd() {
        let a = laplacian(40);
        let b: Vec<f64> = (0..40).map(|i| (i as f64).cos()).collect();
        let r1 = cg(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        let r2 = bicgstab(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        assert!(r1.converged && r2.converged);
        assert!(crate::vector::max_abs_diff(&r1.x, &r2.x) < 1e-6);
    }

    #[test]
    fn solver_residual_is_true_residual() {
        let a = laplacian(25);
        let b = vec![1.0; 25];
        let r = cg(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        let true_res = crate::vector::norm2(&crate::vector::sub(&b, &a.matvec(&r.x)));
        assert!((true_res - r.residual).abs() < 1e-9);
    }
}
