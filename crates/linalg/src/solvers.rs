//! Krylov solvers: preconditioned conjugate gradients for the SPD FEM
//! systems and BiCGStab as a fallback for non-symmetric operators.
//!
//! Two call styles are provided:
//!
//! * [`cg`] / [`bicgstab`] — allocating one-shot drivers (tests, setup
//!   code, anything not on a hot path);
//! * [`cg_into`] / [`bicgstab_into`] — allocation-free drivers for the
//!   MCMC hot loop: the caller owns the solution vector (which doubles
//!   as the warm start) and a reusable [`SolverWorkspace`] of scratch
//!   buffers, so steady-state solves perform no heap allocation.

use crate::sparse::CsrMatrix;
use crate::vector::{axpy, dot, norm2, xpby};

/// Preconditioner interface: computes `z ≈ A⁻¹ r`.
pub trait Preconditioner: Sync {
    /// Apply the preconditioner into a caller-provided buffer
    /// (`z.len() == r.len()`); the hot-path entry point.
    fn apply_into(&self, r: &[f64], z: &mut [f64]);

    /// Allocating convenience wrapper around
    /// [`apply_into`](Self::apply_into).
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; r.len()];
        self.apply_into(r, &mut z);
        z
    }
}

/// No-op preconditioner.
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Jacobi (diagonal) preconditioner.
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Build from the matrix diagonal.
    ///
    /// # Panics
    /// Panics if any diagonal entry is zero.
    pub fn new(a: &CsrMatrix) -> Self {
        let inv_diag = a
            .diagonal()
            .into_iter()
            .map(|d| {
                assert!(d != 0.0, "JacobiPrecond: zero diagonal entry");
                1.0 / d
            })
            .collect();
        Self { inv_diag }
    }
}

impl Preconditioner for JacobiPrecond {
    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.inv_diag.len(), "JacobiPrecond: wrong dim");
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

/// Symmetric SOR preconditioner (one forward + one backward sweep).
///
/// Borrows the matrix instead of cloning it (the clone used to dominate
/// per-solve cost on the FEM hot path) and caches the reciprocal
/// diagonal so each application is two allocation-free triangular
/// sweeps.
pub struct SsorPrecond<'a> {
    a: &'a CsrMatrix,
    inv_diag: Vec<f64>,
    omega: f64,
}

impl<'a> SsorPrecond<'a> {
    /// `omega` is the relaxation parameter in `(0, 2)`; `1.0` gives
    /// symmetric Gauss–Seidel.
    ///
    /// # Panics
    /// Panics if `omega` is out of range or the matrix has a zero
    /// diagonal entry.
    pub fn new(a: &'a CsrMatrix, omega: f64) -> Self {
        assert!(
            omega > 0.0 && omega < 2.0,
            "SsorPrecond: omega must be in (0,2)"
        );
        let inv_diag = a
            .diagonal()
            .into_iter()
            .map(|d| {
                assert!(d != 0.0, "SsorPrecond: zero diagonal entry");
                1.0 / d
            })
            .collect();
        Self { a, inv_diag, omega }
    }
}

impl Preconditioner for SsorPrecond<'_> {
    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        self.a.ssor_apply_into(r, z, self.omega, &self.inv_diag);
    }
}

/// SSOR preconditioner borrowing BOTH the matrix and a caller-owned
/// reciprocal-diagonal cache.
///
/// [`SsorPrecond`] recomputes (and allocates) the reciprocal diagonal at
/// construction, which is wasted work when the matrix values are
/// refilled in place every solve and a persistent cache exists — the FEM
/// hot loop's pattern. Refresh the cache with
/// [`CsrMatrix::recip_diagonal_into`] after each refill and wrap it per
/// solve in this (free) view.
pub struct CachedSsorPrecond<'a> {
    a: &'a CsrMatrix,
    inv_diag: &'a [f64],
    omega: f64,
}

impl<'a> CachedSsorPrecond<'a> {
    /// `inv_diag` must hold the reciprocal diagonal of `a` (see
    /// [`CsrMatrix::recip_diagonal_into`]); `omega` as in
    /// [`SsorPrecond::new`].
    ///
    /// # Panics
    /// Panics if `omega` is out of range or the cache has the wrong
    /// dimension.
    pub fn new(a: &'a CsrMatrix, omega: f64, inv_diag: &'a [f64]) -> Self {
        assert!(
            omega > 0.0 && omega < 2.0,
            "CachedSsorPrecond: omega must be in (0,2)"
        );
        assert_eq!(
            inv_diag.len(),
            a.rows(),
            "CachedSsorPrecond: diagonal cache dimension mismatch"
        );
        Self { a, inv_diag, omega }
    }
}

impl Preconditioner for CachedSsorPrecond<'_> {
    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        self.a.ssor_apply_into(r, z, self.omega, self.inv_diag);
    }
}

/// Iteration controls shared by the Krylov solvers.
#[derive(Clone, Copy, Debug)]
pub struct SolverOptions {
    /// Relative residual reduction target `‖r‖/‖b‖ ≤ rel_tol`.
    pub rel_tol: f64,
    /// Absolute residual target (guards the `b = 0` case).
    pub abs_tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            rel_tol: 1e-10,
            abs_tol: 1e-14,
            max_iter: 10_000,
        }
    }
}

/// Outcome of an in-place iterative solve (the solution lives in the
/// caller's buffer).
#[derive(Clone, Copy, Debug)]
pub struct SolveStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual norm.
    pub residual: f64,
    /// Whether the tolerance was met within `max_iter`.
    pub converged: bool,
}

/// Outcome of an allocating iterative solve.
#[derive(Clone, Debug)]
pub struct IterativeResult {
    /// Solution vector.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final (true) residual norm.
    pub residual: f64,
    /// Whether the tolerance was met within `max_iter`.
    pub converged: bool,
}

/// Reusable scratch buffers for [`cg_into`] and [`bicgstab_into`].
///
/// Create once per worker/chain and reuse across solves; buffers are
/// grown on first use for a given size and never shrunk, so steady-state
/// solves of a fixed dimension allocate nothing.
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    // BiCGStab extras
    r_hat: Vec<f64>,
    v: Vec<f64>,
    s: Vec<f64>,
    t: Vec<f64>,
    ph: Vec<f64>,
    sh: Vec<f64>,
}

impl SolverWorkspace {
    /// Empty workspace; buffers are sized lazily by the solvers.
    pub fn new() -> Self {
        Self::default()
    }

    fn reserve_cg(&mut self, n: usize) {
        self.r.resize(n, 0.0);
        self.z.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.ap.resize(n, 0.0);
    }

    fn reserve_bicgstab(&mut self, n: usize) {
        self.reserve_cg(n);
        self.r_hat.resize(n, 0.0);
        self.v.resize(n, 0.0);
        self.s.resize(n, 0.0);
        self.t.resize(n, 0.0);
        self.ph.resize(n, 0.0);
        self.sh.resize(n, 0.0);
    }
}

/// Preconditioned conjugate gradient method for SPD `A`, allocation-free.
///
/// `x` holds the initial guess on entry (use zeros for a cold start, the
/// previous solution for a warm start) and the solution on exit. All
/// scratch storage comes from `ws`.
pub fn cg_into(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    precond: &dyn Preconditioner,
    opts: SolverOptions,
    ws: &mut SolverWorkspace,
) -> SolveStats {
    let n = b.len();
    assert_eq!(a.rows(), n, "cg: dimension mismatch");
    assert_eq!(x.len(), n, "cg: solution dimension mismatch");
    ws.reserve_cg(n);
    let (r, z, p, ap) = (
        &mut ws.r[..n],
        &mut ws.z[..n],
        &mut ws.p[..n],
        &mut ws.ap[..n],
    );

    a.matvec_into(x, ap);
    for i in 0..n {
        r[i] = b[i] - ap[i];
    }
    let b_norm = norm2(b).max(opts.abs_tol);
    let target = (opts.rel_tol * b_norm).max(opts.abs_tol);

    precond.apply_into(r, z);
    p.copy_from_slice(z);
    let mut rz = dot(r, z);
    let mut iterations = 0;
    let mut res = norm2(r);
    while res > target && iterations < opts.max_iter {
        a.matvec_into(p, ap);
        let pap = dot(p, ap);
        if pap <= 0.0 {
            // loss of positive definiteness (or numerically zero direction)
            break;
        }
        let alpha = rz / pap;
        axpy(alpha, p, x);
        axpy(-alpha, ap, r);
        res = norm2(r);
        iterations += 1;
        if res <= target {
            break;
        }
        precond.apply_into(r, z);
        let rz_new = dot(r, z);
        let beta = rz_new / rz;
        rz = rz_new;
        xpby(z, beta, p);
    }
    SolveStats {
        iterations,
        residual: res,
        converged: res <= target,
    }
}

/// Preconditioned conjugate gradient method for SPD `A` (allocating
/// wrapper around [`cg_into`]).
pub fn cg(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    precond: &dyn Preconditioner,
    opts: SolverOptions,
) -> IterativeResult {
    let n = b.len();
    let mut x = x0.map_or_else(|| vec![0.0; n], <[f64]>::to_vec);
    let mut ws = SolverWorkspace::new();
    let stats = cg_into(a, b, &mut x, precond, opts, &mut ws);
    IterativeResult {
        x,
        iterations: stats.iterations,
        residual: stats.residual,
        converged: stats.converged,
    }
}

/// BiCGStab for general (possibly nonsymmetric) `A`, allocation-free.
///
/// Same calling convention as [`cg_into`].
pub fn bicgstab_into(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    precond: &dyn Preconditioner,
    opts: SolverOptions,
    ws: &mut SolverWorkspace,
) -> SolveStats {
    let n = b.len();
    assert_eq!(a.rows(), n, "bicgstab: dimension mismatch");
    assert_eq!(x.len(), n, "bicgstab: solution dimension mismatch");
    ws.reserve_bicgstab(n);
    let r = &mut ws.r[..n];
    let r_hat = &mut ws.r_hat[..n];
    let v = &mut ws.v[..n];
    let p = &mut ws.p[..n];
    let s = &mut ws.s[..n];
    let t = &mut ws.t[..n];
    let ph = &mut ws.ph[..n];
    let sh = &mut ws.sh[..n];

    a.matvec_into(x, t);
    for i in 0..n {
        r[i] = b[i] - t[i];
    }
    r_hat.copy_from_slice(r);
    let b_norm = norm2(b).max(opts.abs_tol);
    let target = (opts.rel_tol * b_norm).max(opts.abs_tol);

    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    v.fill(0.0);
    p.fill(0.0);
    let mut iterations = 0;
    let mut res = norm2(r);
    while res > target && iterations < opts.max_iter {
        let rho_new = dot(r_hat, r);
        if rho_new.abs() < 1e-300 {
            break;
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + beta (p - omega v)
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        precond.apply_into(p, ph);
        a.matvec_into(ph, v);
        let rhv = dot(r_hat, v);
        if rhv.abs() < 1e-300 {
            break;
        }
        alpha = rho / rhv;
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        if norm2(s) <= target {
            axpy(alpha, ph, x);
            res = norm2(s);
            iterations += 1;
            break;
        }
        precond.apply_into(s, sh);
        a.matvec_into(sh, t);
        let tt = dot(t, t);
        if tt.abs() < 1e-300 {
            break;
        }
        omega = dot(t, s) / tt;
        for i in 0..n {
            x[i] += alpha * ph[i] + omega * sh[i];
            r[i] = s[i] - omega * t[i];
        }
        res = norm2(r);
        iterations += 1;
        if omega.abs() < 1e-300 {
            break;
        }
    }
    SolveStats {
        iterations,
        residual: res,
        converged: res <= target,
    }
}

/// BiCGStab for general (possibly nonsymmetric) `A` (allocating wrapper
/// around [`bicgstab_into`]).
pub fn bicgstab(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    precond: &dyn Preconditioner,
    opts: SolverOptions,
) -> IterativeResult {
    let n = b.len();
    let mut x = x0.map_or_else(|| vec![0.0; n], <[f64]>::to_vec);
    let mut ws = SolverWorkspace::new();
    let stats = bicgstab_into(a, b, &mut x, precond, opts, &mut ws);
    IterativeResult {
        x,
        iterations: stats.iterations,
        residual: stats.residual,
        converged: stats.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CooMatrix;

    /// 1-D Laplacian (tridiagonal 2,-1) of order `n`.
    fn laplacian(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        coo.to_csr()
    }

    /// Nonsymmetric convection-diffusion-like operator.
    fn nonsym(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 3.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.5);
                coo.push(i + 1, i, -0.5);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn cg_solves_laplacian() {
        let a = laplacian(50);
        let x_true: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).sin()).collect();
        let b = a.matvec(&x_true);
        let r = cg(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        assert!(r.converged, "cg failed: residual {}", r.residual);
        assert!(crate::vector::max_abs_diff(&r.x, &x_true) < 1e-7);
    }

    #[test]
    fn cg_with_jacobi_converges_not_slower() {
        let a = laplacian(80);
        let b = vec![1.0; 80];
        let plain = cg(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        let pre = JacobiPrecond::new(&a);
        let jac = cg(&a, &b, None, &pre, SolverOptions::default());
        assert!(plain.converged && jac.converged);
        // Jacobi = scaled identity here, so same iteration count; just sanity
        assert!(jac.iterations <= plain.iterations + 2);
    }

    #[test]
    fn cg_with_ssor_reduces_iterations() {
        let a = laplacian(120);
        let b = vec![1.0; 120];
        let plain = cg(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        let pre = SsorPrecond::new(&a, 1.2);
        let ssor = cg(&a, &b, None, &pre, SolverOptions::default());
        assert!(ssor.converged);
        assert!(
            ssor.iterations < plain.iterations,
            "SSOR ({}) should beat plain CG ({})",
            ssor.iterations,
            plain.iterations
        );
    }

    #[test]
    fn ssor_precond_matches_raw_ssor_apply() {
        let a = laplacian(40);
        let r: Vec<f64> = (0..40).map(|i| ((i * 3) % 7) as f64 - 3.0).collect();
        let pre = SsorPrecond::new(&a, 1.3);
        let via_precond = pre.apply(&r);
        let via_matrix = a.ssor_apply(&r, 1.3);
        assert!(crate::vector::max_abs_diff(&via_precond, &via_matrix) < 1e-14);
    }

    #[test]
    fn cached_ssor_matches_owning_ssor() {
        let a = laplacian(60);
        let r: Vec<f64> = (0..60).map(|i| ((i * 5) % 9) as f64 - 4.0).collect();
        let owning = SsorPrecond::new(&a, 1.1);
        let mut inv_diag = vec![0.0; 60];
        a.recip_diagonal_into(&mut inv_diag);
        let cached = CachedSsorPrecond::new(&a, 1.1, &inv_diag);
        let za = owning.apply(&r);
        let zb = cached.apply(&r);
        assert!(crate::vector::max_abs_diff(&za, &zb) < 1e-15);
    }

    #[test]
    fn cg_zero_rhs_returns_zero() {
        let a = laplacian(10);
        let r = cg(
            &a,
            &[0.0; 10],
            None,
            &IdentityPrecond,
            SolverOptions::default(),
        );
        assert!(r.converged);
        assert!(crate::vector::norm2(&r.x) < 1e-12);
    }

    #[test]
    fn cg_warm_start_uses_initial_guess() {
        let a = laplacian(30);
        let x_true: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b = a.matvec(&x_true);
        let cold = cg(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        let warm = cg(
            &a,
            &b,
            Some(&x_true),
            &IdentityPrecond,
            SolverOptions::default(),
        );
        assert_eq!(
            warm.iterations, 0,
            "exact warm start should converge immediately"
        );
        assert!(cold.iterations > 0);
    }

    #[test]
    fn cg_respects_max_iter() {
        let a = laplacian(200);
        let b = vec![1.0; 200];
        let opts = SolverOptions {
            max_iter: 3,
            ..Default::default()
        };
        let r = cg(&a, &b, None, &IdentityPrecond, opts);
        assert!(!r.converged);
        assert_eq!(r.iterations, 3);
    }

    #[test]
    fn cg_into_reuses_workspace_and_matches_cg() {
        let a = laplacian(60);
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.3).cos()).collect();
        let reference = cg(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        let mut ws = SolverWorkspace::new();
        let mut x = vec![0.0; 60];
        let s1 = cg_into(
            &a,
            &b,
            &mut x,
            &IdentityPrecond,
            SolverOptions::default(),
            &mut ws,
        );
        assert!(s1.converged);
        assert_eq!(s1.iterations, reference.iterations);
        assert!(crate::vector::max_abs_diff(&x, &reference.x) < 1e-12);
        // second solve through the same workspace: warm start converges at once
        let s2 = cg_into(
            &a,
            &b,
            &mut x,
            &IdentityPrecond,
            SolverOptions::default(),
            &mut ws,
        );
        assert!(s2.converged);
        assert_eq!(s2.iterations, 0);
    }

    #[test]
    fn bicgstab_solves_nonsymmetric() {
        let a = nonsym(60);
        let x_true: Vec<f64> = (0..60).map(|i| ((i * 7) % 11) as f64 / 11.0).collect();
        let b = a.matvec(&x_true);
        let r = bicgstab(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        assert!(r.converged, "bicgstab failed: residual {}", r.residual);
        assert!(crate::vector::max_abs_diff(&r.x, &x_true) < 1e-6);
    }

    #[test]
    fn bicgstab_into_matches_bicgstab() {
        let a = nonsym(45);
        let x_true: Vec<f64> = (0..45).map(|i| (i as f64 * 0.2).sin()).collect();
        let b = a.matvec(&x_true);
        let reference = bicgstab(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        let mut ws = SolverWorkspace::new();
        let mut x = vec![0.0; 45];
        let s = bicgstab_into(
            &a,
            &b,
            &mut x,
            &IdentityPrecond,
            SolverOptions::default(),
            &mut ws,
        );
        assert!(s.converged && reference.converged);
        assert_eq!(s.iterations, reference.iterations);
        assert!(crate::vector::max_abs_diff(&x, &reference.x) < 1e-12);
    }

    #[test]
    fn bicgstab_matches_cg_on_spd() {
        let a = laplacian(40);
        let b: Vec<f64> = (0..40).map(|i| (i as f64).cos()).collect();
        let r1 = cg(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        let r2 = bicgstab(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        assert!(r1.converged && r2.converged);
        assert!(crate::vector::max_abs_diff(&r1.x, &r2.x) < 1e-6);
    }

    #[test]
    fn solver_residual_is_true_residual() {
        let a = laplacian(25);
        let b = vec![1.0; 25];
        let r = cg(&a, &b, None, &IdentityPrecond, SolverOptions::default());
        let true_res = crate::vector::norm2(&crate::vector::sub(&b, &a.matvec(&r.x)));
        assert!((true_res - r.residual).abs() < 1e-9);
    }
}
