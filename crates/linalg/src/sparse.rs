//! Sparse matrices in COO (assembly) and CSR (compute) formats.
//!
//! FEM assembly accumulates triplets into a [`CooMatrix`]; the solver phase
//! converts once to [`CsrMatrix`] which provides serial and Rayon-parallel
//! matrix–vector products plus the row access the SSOR preconditioner needs.

use rayon::prelude::*;

/// Coordinate-format (triplet) sparse matrix used during assembly.
///
/// Duplicate entries are allowed and are summed when converting to CSR —
/// exactly the semantics element-by-element FEM assembly needs.
#[derive(Clone, Debug)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Empty matrix of shape `rows × cols`.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Accumulate `value` at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the index is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "CooMatrix::push: out of bounds"
        );
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (possibly duplicate) triplets.
    pub fn nnz_stored(&self) -> usize {
        self.entries.len()
    }

    /// Convert to CSR, summing duplicates.
    ///
    /// The sort is *stable*, so duplicate entries are summed in push
    /// order. This makes the result bit-identical to an in-place refill
    /// through `uq-fem`'s scatter map, which accumulates element
    /// contributions in the same (element-loop) order.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_counts = vec![0usize; self.rows];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut prev: Option<(usize, usize)> = None;
        for &(r, c, v) in &sorted {
            if prev == Some((r, c)) {
                *values.last_mut().unwrap() += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_counts[r] += 1;
                prev = Some((r, c));
            }
        }
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0);
        for &count in &row_counts {
            row_ptr.push(row_ptr.last().unwrap() + count);
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Compressed sparse row matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Build from raw CSR arrays (columns must be strictly increasing
    /// within each row). Lets symbolic-pattern holders mint matrices
    /// without keeping a prototype matrix alive.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent: `row_ptr` must have
    /// `rows + 1` monotone entries ending at `col_idx.len()`,
    /// `values.len()` must equal `col_idx.len()`, and every column index
    /// must be in range and sorted within its row.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "from_raw: row_ptr length");
        assert_eq!(row_ptr[0], 0, "from_raw: row_ptr must start at 0");
        assert_eq!(
            *row_ptr.last().unwrap(),
            col_idx.len(),
            "from_raw: row_ptr must end at nnz"
        );
        assert_eq!(values.len(), col_idx.len(), "from_raw: values length");
        for i in 0..rows {
            assert!(
                row_ptr[i] <= row_ptr[i + 1],
                "from_raw: row_ptr not monotone"
            );
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for w in row.windows(2) {
                assert!(
                    w[0] < w[1],
                    "from_raw: columns not strictly sorted in row {i}"
                );
            }
            if let Some(&last) = row.last() {
                assert!(last < cols, "from_raw: column out of range in row {i}");
            }
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// The row-pointer array (length `rows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array (length `nnz`), sorted within each row.
    pub fn col_indices(&self) -> &[usize] {
        &self.col_idx
    }

    /// The stored values (length `nnz`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values, for in-place refills that
    /// keep the symbolic pattern fixed (the sparsity structure cannot be
    /// changed through this view).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Position of entry `(i, j)` in the [`values`](Self::values) array,
    /// or `None` if it is not stored. Binary search over the sorted
    /// columns of row `i` — used to build scatter maps once per pattern.
    pub fn entry_position(&self, i: usize, j: usize) -> Option<usize> {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .binary_search(&j)
            .ok()
            .map(|off| lo + off)
    }

    /// Entry `(i, j)` — O(row nnz) lookup, intended for tests and setup.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        cols.iter().position(|&c| c == j).map_or(0.0, |p| vals[p])
    }

    /// Diagonal entries.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Reciprocal diagonal into a caller-owned buffer — the refresh path
    /// for preconditioner caches over matrices whose values are refilled
    /// in place between solves.
    ///
    /// # Panics
    /// Panics on dimension mismatch or a zero diagonal entry.
    pub fn recip_diagonal_into(&self, out: &mut [f64]) {
        let n = self.rows.min(self.cols);
        assert_eq!(out.len(), n, "recip_diagonal_into: dimension mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            let d = self.get(i, i);
            assert!(d != 0.0, "recip_diagonal_into: zero diagonal at row {i}");
            *o = 1.0 / d;
        }
    }

    /// Serial matrix–vector product `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Serial matrix–vector product into a caller-provided buffer (avoids
    /// per-iteration allocation in the Krylov loops).
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec_into: dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec_into: output dimension mismatch");
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let mut s = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                s += v * x[c];
            }
            y[i] = s;
        }
    }

    /// Rayon-parallel matrix–vector product (row-partitioned; used on the
    /// fine FEM levels where rows ≫ cores).
    pub fn par_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "par_matvec: dimension mismatch");
        (0..self.rows)
            .into_par_iter()
            .map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter().zip(vals).map(|(&c, &v)| v * x[c]).sum()
            })
            .collect()
    }

    /// Symmetry check up to `tol` (structure-agnostic; O(nnz · log nnz)).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if (v - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// One forward Gauss–Seidel sweep solving `(D + L) z = r` in place,
    /// followed by one backward sweep for `(D + U) z = D z_mid` — i.e. the
    /// SSOR action used as a preconditioner. `omega` is the relaxation
    /// factor.
    pub fn ssor_apply(&self, r: &[f64], omega: f64) -> Vec<f64> {
        assert_eq!(self.rows, self.cols, "ssor_apply: matrix must be square");
        let inv_diag: Vec<f64> = (0..self.rows)
            .map(|i| {
                let d = self.get(i, i);
                debug_assert!(d != 0.0, "ssor: zero diagonal at row {i}");
                1.0 / d
            })
            .collect();
        let mut z = vec![0.0; self.rows];
        self.ssor_apply_into(r, &mut z, omega, &inv_diag);
        z
    }

    /// Allocation-free SSOR application into a caller-provided buffer.
    ///
    /// `inv_diag` must hold the reciprocal diagonal of the matrix
    /// (cached by the caller across applications, e.g. by
    /// [`crate::solvers::SsorPrecond`]). Both sweeps run in place in
    /// `z`: the backward sweep only reads `z[c]` for `c > i`, which at
    /// that point already holds the updated value it needs.
    pub fn ssor_apply_into(&self, r: &[f64], z: &mut [f64], omega: f64, inv_diag: &[f64]) {
        assert_eq!(
            self.rows, self.cols,
            "ssor_apply_into: matrix must be square"
        );
        let n = self.rows;
        assert_eq!(r.len(), n, "ssor_apply_into: rhs dimension mismatch");
        assert_eq!(z.len(), n, "ssor_apply_into: output dimension mismatch");
        assert_eq!(
            inv_diag.len(),
            n,
            "ssor_apply_into: diagonal dimension mismatch"
        );
        // forward sweep: z = ω (D/ω + L)⁻¹ r  (columns are sorted, so the
        // strictly-lower part is an exact prefix of each row)
        for i in 0..n {
            let (cols, vals) = self.row(i);
            let mut s = r[i];
            for (&c, &v) in cols.iter().zip(vals) {
                if c >= i {
                    break;
                }
                s -= v * z[c];
            }
            z[i] = omega * s * inv_diag[i];
        }
        // middle factor: z *= D/ω
        for (zi, di) in z.iter_mut().zip(inv_diag) {
            *zi /= omega * di;
        }
        // backward sweep: z = ω (D/ω + U)⁻¹ z_mid, in place
        for i in (0..n).rev() {
            let (cols, vals) = self.row(i);
            let mut s = z[i];
            for (&c, &v) in cols.iter().zip(vals).rev() {
                if c <= i {
                    break;
                }
                s -= v * z[c];
            }
            z[i] = omega * s * inv_diag[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_csr() -> CsrMatrix {
        // [2 -1  0]
        // [-1 2 -1]
        // [0 -1  2]
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 2.0);
        }
        coo.push(0, 1, -1.0);
        coo.push(1, 0, -1.0);
        coo.push(1, 2, -1.0);
        coo.push(2, 1, -1.0);
        coo.to_csr()
    }

    #[test]
    fn coo_to_csr_basic() {
        let a = small_csr();
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn coo_duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.5);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        assert_eq!(a.get(0, 0), 3.5);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn coo_with_empty_rows() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 1.0);
        coo.push(3, 3, 2.0);
        let a = coo.to_csr();
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0, 1.0]), vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn matvec_tridiagonal() {
        let a = small_csr();
        let y = a.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn par_matvec_matches_serial() {
        let a = small_csr();
        let x = vec![0.3, -1.2, 2.2];
        assert_eq!(a.matvec(&x), a.par_matvec(&x));
    }

    #[test]
    fn identity_is_identity() {
        let i = CsrMatrix::identity(5);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(i.matvec(&x), x);
        assert_eq!(i.nnz(), 5);
    }

    #[test]
    fn symmetry_detection() {
        assert!(small_csr().is_symmetric(1e-14));
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 3.0);
        coo.push(1, 1, 1.0);
        assert!(!coo.to_csr().is_symmetric(1e-14));
    }

    #[test]
    fn diagonal_extraction() {
        assert_eq!(small_csr().diagonal(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn ssor_is_exact_for_diagonal_matrix() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 4.0);
        coo.push(2, 2, 8.0);
        let a = coo.to_csr();
        let z = a.ssor_apply(&[2.0, 4.0, 8.0], 1.0);
        for v in &z {
            assert!((v - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn ssor_reduces_residual() {
        let a = small_csr();
        let b = vec![1.0, 1.0, 1.0];
        // one SSOR application should be closer to the solution than zero
        let z = a.ssor_apply(&b, 1.0);
        let r = crate::vector::sub(&b, &a.matvec(&z));
        assert!(crate::vector::norm2(&r) < crate::vector::norm2(&b));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn coo_push_out_of_bounds_panics() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(1, 0, 1.0);
    }
}
