//! Sparse matrices in COO (assembly) and CSR (compute) formats.
//!
//! FEM assembly accumulates triplets into a [`CooMatrix`]; the solver phase
//! converts once to [`CsrMatrix`] which provides serial and Rayon-parallel
//! matrix–vector products plus the row access the SSOR preconditioner needs.

use rayon::prelude::*;

/// Coordinate-format (triplet) sparse matrix used during assembly.
///
/// Duplicate entries are allowed and are summed when converting to CSR —
/// exactly the semantics element-by-element FEM assembly needs.
#[derive(Clone, Debug)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Empty matrix of shape `rows × cols`.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Accumulate `value` at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the index is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "CooMatrix::push: out of bounds"
        );
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (possibly duplicate) triplets.
    pub fn nnz_stored(&self) -> usize {
        self.entries.len()
    }

    /// Convert to CSR, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_counts = vec![0usize; self.rows];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut prev: Option<(usize, usize)> = None;
        for &(r, c, v) in &sorted {
            if prev == Some((r, c)) {
                *values.last_mut().unwrap() += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_counts[r] += 1;
                prev = Some((r, c));
            }
        }
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0);
        for &count in &row_counts {
            row_ptr.push(row_ptr.last().unwrap() + count);
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Compressed sparse row matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Entry `(i, j)` — O(row nnz) lookup, intended for tests and setup.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        cols.iter().position(|&c| c == j).map_or(0.0, |p| vals[p])
    }

    /// Diagonal entries.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Serial matrix–vector product `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Serial matrix–vector product into a caller-provided buffer (avoids
    /// per-iteration allocation in the Krylov loops).
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec_into: dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec_into: output dimension mismatch");
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let mut s = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                s += v * x[c];
            }
            y[i] = s;
        }
    }

    /// Rayon-parallel matrix–vector product (row-partitioned; used on the
    /// fine FEM levels where rows ≫ cores).
    pub fn par_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "par_matvec: dimension mismatch");
        (0..self.rows)
            .into_par_iter()
            .map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter().zip(vals).map(|(&c, &v)| v * x[c]).sum()
            })
            .collect()
    }

    /// Symmetry check up to `tol` (structure-agnostic; O(nnz · log nnz)).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if (v - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// One forward Gauss–Seidel sweep solving `(D + L) z = r` in place,
    /// followed by one backward sweep for `(D + U) z = D z_mid` — i.e. the
    /// SSOR action used as a preconditioner. `omega` is the relaxation
    /// factor.
    pub fn ssor_apply(&self, r: &[f64], omega: f64) -> Vec<f64> {
        assert_eq!(self.rows, self.cols, "ssor_apply: matrix must be square");
        let n = self.rows;
        let mut z = vec![0.0; n];
        // forward sweep: (D/omega + L) z = r
        for i in 0..n {
            let (cols, vals) = self.row(i);
            let mut s = r[i];
            let mut diag = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c < i {
                    s -= v * z[c];
                } else if c == i {
                    diag = v;
                }
            }
            debug_assert!(diag != 0.0, "ssor: zero diagonal at row {i}");
            z[i] = omega * s / diag;
        }
        // scale by D/omega (the middle factor of SSOR)
        for i in 0..n {
            z[i] *= self.get(i, i) / omega;
        }
        // backward sweep: (D/omega + U) out = z_mid
        let mut out = vec![0.0; n];
        for i in (0..n).rev() {
            let (cols, vals) = self.row(i);
            let mut s = z[i];
            let mut diag = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c > i {
                    s -= v * out[c];
                } else if c == i {
                    diag = v;
                }
            }
            out[i] = omega * s / diag;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_csr() -> CsrMatrix {
        // [2 -1  0]
        // [-1 2 -1]
        // [0 -1  2]
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 2.0);
        }
        coo.push(0, 1, -1.0);
        coo.push(1, 0, -1.0);
        coo.push(1, 2, -1.0);
        coo.push(2, 1, -1.0);
        coo.to_csr()
    }

    #[test]
    fn coo_to_csr_basic() {
        let a = small_csr();
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn coo_duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.5);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        assert_eq!(a.get(0, 0), 3.5);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn coo_with_empty_rows() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 1.0);
        coo.push(3, 3, 2.0);
        let a = coo.to_csr();
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0, 1.0]), vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn matvec_tridiagonal() {
        let a = small_csr();
        let y = a.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn par_matvec_matches_serial() {
        let a = small_csr();
        let x = vec![0.3, -1.2, 2.2];
        assert_eq!(a.matvec(&x), a.par_matvec(&x));
    }

    #[test]
    fn identity_is_identity() {
        let i = CsrMatrix::identity(5);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(i.matvec(&x), x);
        assert_eq!(i.nnz(), 5);
    }

    #[test]
    fn symmetry_detection() {
        assert!(small_csr().is_symmetric(1e-14));
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 3.0);
        coo.push(1, 1, 1.0);
        assert!(!coo.to_csr().is_symmetric(1e-14));
    }

    #[test]
    fn diagonal_extraction() {
        assert_eq!(small_csr().diagonal(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn ssor_is_exact_for_diagonal_matrix() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 4.0);
        coo.push(2, 2, 8.0);
        let a = coo.to_csr();
        let z = a.ssor_apply(&[2.0, 4.0, 8.0], 1.0);
        for v in &z {
            assert!((v - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn ssor_reduces_residual() {
        let a = small_csr();
        let b = vec![1.0, 1.0, 1.0];
        // one SSOR application should be closer to the solution than zero
        let z = a.ssor_apply(&b, 1.0);
        let r = crate::vector::sub(&b, &a.matvec(&z));
        assert!(crate::vector::norm2(&r) < crate::vector::norm2(&b));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn coo_push_out_of_bounds_panics() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(1, 0, 1.0);
    }
}
