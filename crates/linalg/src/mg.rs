//! Geometric multigrid on structured `(n+1) × (n+1)` node grids.
//!
//! A [`GmgHierarchy`] owns one sparse operator per mesh level (finest
//! first, each coarser level halving the element count per direction)
//! and applies a V-cycle with
//!
//! * full-weighting restriction — exactly `Pᵀ` of the bilinear
//!   prolongation, the FEM-consistent residual transfer for Q1
//!   stiffness matrices (whose entries are `h`-independent in 2-D);
//! * bilinear prolongation of coarse corrections;
//! * weighted-Jacobi or red–black Gauss–Seidel smoothing (the latter
//!   reverses its colour order on the post-smooth so the overall
//!   V-cycle stays symmetric — required when the cycle preconditions
//!   conjugate gradients);
//! * a dense Cholesky direct solve on the coarsest level.
//!
//! Node ordering matches `uq-fem`'s [`StructuredGrid`]: node `(i, j)` at
//! linear index `j·(n+1) + i` (x fastest). Dirichlet-eliminated rows are
//! communicated through a per-level `fixed` mask: residuals at fixed
//! nodes are zeroed before restriction, and coarse corrections at fixed
//! nodes vanish identically, so boundary values are never polluted.
//!
//! Matrix *values* may be refilled in place between solves (the FEM
//! layer re-discretizes each level for every new diffusion field `κ`);
//! call [`GmgHierarchy::refresh`] afterwards to recompute the cached
//! diagonals and the coarse factorization. Steady-state V-cycles
//! allocate nothing: all level scratch lives in an internal workspace
//! created on first use.
//!
//! [`StructuredGrid`]: https://docs.rs/uq-fem

use crate::dense::DenseMatrix;
use crate::solvers::{Preconditioner, SolveStats, SolverOptions};
use crate::sparse::CsrMatrix;
use crate::vector::norm2;
use parking_lot::Mutex;

/// Smoother used on every level but the coarsest.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Smoother {
    /// Damped Jacobi `x ← x + ω D⁻¹ (b − A x)`; symmetric for any sweep
    /// count. `ω ≈ 0.8` is a good default for Q1 Laplacians.
    WeightedJacobi {
        /// Damping factor in `(0, 1]`.
        omega: f64,
    },
    /// Red–black Gauss–Seidel (checkerboard colouring by node parity).
    /// Pre-smooths red→black in ascending node order; post-smooths
    /// black→red in descending node order (the exact adjoint sweep,
    /// needed because the 9-point Q1 stencil couples same-colour
    /// diagonal neighbours), which makes the V-cycle symmetric.
    RedBlackGaussSeidel,
}

/// One level of input to [`GmgHierarchy::new`]: the mesh size `n`
/// (elements per direction, so `(n+1)²` nodes), the assembled operator,
/// and the Dirichlet mask (`true` = fixed node, whose row must be an
/// eliminated identity row).
pub struct GmgLevelSpec {
    /// Elements per direction.
    pub n: usize,
    /// Assembled operator on this level, `(n+1)² × (n+1)²`.
    pub matrix: CsrMatrix,
    /// Per-node Dirichlet mask, length `(n+1)²`.
    pub fixed: Vec<bool>,
}

struct Level {
    n: usize,
    a: CsrMatrix,
    fixed: Vec<bool>,
    inv_diag: Vec<f64>,
}

/// Per-level scratch vectors; allocated on first V-cycle, reused after.
#[derive(Default)]
struct Work {
    x: Vec<Vec<f64>>,
    b: Vec<Vec<f64>>,
    r: Vec<Vec<f64>>,
    tmp: Vec<Vec<f64>>,
}

/// A geometric multigrid hierarchy, usable standalone (via
/// [`solve`](Self::solve)) or as a CG preconditioner (one V-cycle per
/// [`Preconditioner::apply_into`] call).
pub struct GmgHierarchy {
    levels: Vec<Level>,
    smoother: Smoother,
    nu_pre: usize,
    nu_post: usize,
    /// Dense scratch for the coarsest operator, refilled by `refresh`.
    coarse_dense: DenseMatrix,
    /// Lower Cholesky factor of the coarsest operator.
    coarse_chol: DenseMatrix,
    work: Mutex<Work>,
}

impl GmgHierarchy {
    /// Build a hierarchy from per-level operators, finest first.
    ///
    /// # Panics
    /// Panics if fewer than two levels are given, if dimensions are
    /// inconsistent (`matrix` must be `(n+1)² × (n+1)²` and each coarser
    /// level must halve `n`), or if the coarsest operator is not SPD.
    pub fn new(
        specs: Vec<GmgLevelSpec>,
        smoother: Smoother,
        nu_pre: usize,
        nu_post: usize,
    ) -> Self {
        assert!(specs.len() >= 2, "GmgHierarchy: need at least two levels");
        assert!(
            nu_pre + nu_post > 0,
            "GmgHierarchy: need at least one smoothing sweep"
        );
        if let Smoother::WeightedJacobi { omega } = smoother {
            assert!(
                omega > 0.0 && omega <= 1.0,
                "GmgHierarchy: Jacobi damping must be in (0, 1]"
            );
        }
        for w in specs.windows(2) {
            assert_eq!(
                w[1].n * 2,
                w[0].n,
                "GmgHierarchy: each coarser level must halve n"
            );
        }
        let levels: Vec<Level> = specs
            .into_iter()
            .map(|s| {
                let nodes = (s.n + 1) * (s.n + 1);
                assert_eq!(s.matrix.rows(), nodes, "GmgHierarchy: matrix/grid mismatch");
                assert_eq!(
                    s.matrix.cols(),
                    nodes,
                    "GmgHierarchy: matrix must be square"
                );
                assert_eq!(s.fixed.len(), nodes, "GmgHierarchy: mask/grid mismatch");
                Level {
                    n: s.n,
                    a: s.matrix,
                    fixed: s.fixed,
                    inv_diag: vec![0.0; nodes],
                }
            })
            .collect();
        let coarse_nodes = levels.last().expect("at least two levels").a.rows();
        let mut h = Self {
            levels,
            smoother,
            nu_pre,
            nu_post,
            coarse_dense: DenseMatrix::zeros(coarse_nodes, coarse_nodes),
            coarse_chol: DenseMatrix::zeros(coarse_nodes, coarse_nodes),
            work: Mutex::new(Work::default()),
        };
        h.refresh();
        h
    }

    /// Number of levels (≥ 2), finest first.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Mesh size `n` of level `l`.
    pub fn level_n(&self, l: usize) -> usize {
        self.levels[l].n
    }

    /// The operator on level `l`.
    pub fn matrix(&self, l: usize) -> &CsrMatrix {
        &self.levels[l].a
    }

    /// Mutable operator access for in-place value refills. After
    /// refilling any level, call [`refresh`](Self::refresh) before the
    /// next V-cycle.
    pub fn matrix_mut(&mut self, l: usize) -> &mut CsrMatrix {
        &mut self.levels[l].a
    }

    /// Recompute the cached reciprocal diagonals and refactor the
    /// coarsest level. Must be called after matrix values change. Runs
    /// entirely in preallocated storage (the per-MCMC-step path).
    ///
    /// # Panics
    /// Panics if a diagonal entry is zero or the coarsest operator is
    /// not SPD.
    pub fn refresh(&mut self) {
        for lev in &mut self.levels {
            for i in 0..lev.a.rows() {
                let d = lev.a.get(i, i);
                assert!(d != 0.0, "GmgHierarchy: zero diagonal at row {i}");
                lev.inv_diag[i] = 1.0 / d;
            }
        }
        let coarse = self.levels.last().expect("at least two levels");
        let nodes = coarse.a.rows();
        for i in 0..nodes {
            for j in 0..nodes {
                self.coarse_dense[(i, j)] = 0.0;
            }
            let (cols, vals) = coarse.a.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                self.coarse_dense[(i, c)] = v;
            }
        }
        assert!(
            self.coarse_chol.cholesky_from(&self.coarse_dense),
            "GmgHierarchy: coarsest operator must be SPD"
        );
    }

    /// One V-cycle applied to `b` from a zero initial guess: `z ≈ A⁻¹ b`.
    /// This is the preconditioner action; it is symmetric positive
    /// definite for the smoothers provided here.
    pub fn vcycle_into(&self, b: &[f64], z: &mut [f64]) {
        let nodes = self.levels[0].a.rows();
        assert_eq!(b.len(), nodes, "vcycle_into: rhs dimension mismatch");
        assert_eq!(z.len(), nodes, "vcycle_into: output dimension mismatch");
        let mut work = self.work.lock();
        self.ensure_work(&mut work);
        work.b[0].copy_from_slice(b);
        work.x[0].fill(0.0);
        self.vcycle_level(0, &mut work);
        z.copy_from_slice(&work.x[0]);
    }

    /// Standalone multigrid iteration: repeat V-cycles until the true
    /// residual satisfies `opts`. `x` carries the initial guess in and
    /// the solution out; `iterations` counts V-cycles.
    pub fn solve(&self, b: &[f64], x: &mut [f64], opts: SolverOptions) -> SolveStats {
        let nodes = self.levels[0].a.rows();
        assert_eq!(
            b.len(),
            nodes,
            "GmgHierarchy::solve: rhs dimension mismatch"
        );
        assert_eq!(
            x.len(),
            nodes,
            "GmgHierarchy::solve: solution dimension mismatch"
        );
        let a = &self.levels[0].a;
        let mut r = vec![0.0; nodes];
        let mut z = vec![0.0; nodes];
        let b_norm = norm2(b).max(opts.abs_tol);
        let target = (opts.rel_tol * b_norm).max(opts.abs_tol);
        let mut iterations = 0;
        loop {
            a.matvec_into(x, &mut r);
            for (ri, bi) in r.iter_mut().zip(b) {
                *ri = bi - *ri;
            }
            let res = norm2(&r);
            if res <= target || iterations >= opts.max_iter {
                return SolveStats {
                    iterations,
                    residual: res,
                    converged: res <= target,
                };
            }
            self.vcycle_into(&r, &mut z);
            for (xi, zi) in x.iter_mut().zip(&z) {
                *xi += zi;
            }
            iterations += 1;
        }
    }

    fn ensure_work(&self, work: &mut Work) {
        if work.x.len() == self.levels.len() {
            return;
        }
        work.x.clear();
        work.b.clear();
        work.r.clear();
        work.tmp.clear();
        for lev in &self.levels {
            let nodes = lev.a.rows();
            work.x.push(vec![0.0; nodes]);
            work.b.push(vec![0.0; nodes]);
            work.r.push(vec![0.0; nodes]);
            work.tmp.push(vec![0.0; nodes]);
        }
    }

    fn vcycle_level(&self, l: usize, work: &mut Work) {
        if l + 1 == self.levels.len() {
            // coarsest level: direct solve via the cached Cholesky factor
            self.coarse_chol
                .solve_cholesky_into(&work.b[l], &mut work.x[l]);
            return;
        }
        self.smooth(l, work, self.nu_pre, false);
        // residual, masked at Dirichlet nodes
        let lev = &self.levels[l];
        lev.a.matvec_into(&work.x[l], &mut work.tmp[l]);
        for i in 0..lev.a.rows() {
            work.r[l][i] = if lev.fixed[i] {
                0.0
            } else {
                work.b[l][i] - work.tmp[l][i]
            };
        }
        // restrict to the coarse rhs and recurse from a zero guess
        let next = &self.levels[l + 1];
        restrict_full_weighting(lev.n, &work.r[l], next.n, &mut work.b[l + 1], &next.fixed);
        work.x[l + 1].fill(0.0);
        self.vcycle_level(l + 1, work);
        // prolongate the coarse correction and post-smooth
        let (fine_x, coarse_x) = work.x.split_at_mut(l + 1);
        prolong_add_bilinear(next.n, &coarse_x[0], lev.n, &mut fine_x[l]);
        self.smooth(l, work, self.nu_post, true);
    }

    fn smooth(&self, l: usize, work: &mut Work, sweeps: usize, reverse: bool) {
        let lev = &self.levels[l];
        match self.smoother {
            Smoother::WeightedJacobi { omega } => {
                for _ in 0..sweeps {
                    lev.a.matvec_into(&work.x[l], &mut work.tmp[l]);
                    let (x, b, tmp) = (&mut work.x[l], &work.b[l], &work.tmp[l]);
                    for i in 0..lev.a.rows() {
                        x[i] += omega * lev.inv_diag[i] * (b[i] - tmp[i]);
                    }
                }
            }
            Smoother::RedBlackGaussSeidel => {
                let colors: [usize; 2] = if reverse { [1, 0] } else { [0, 1] };
                for _ in 0..sweeps {
                    for &color in &colors {
                        gauss_seidel_color(lev, &work.b[l], &mut work.x[l], color, reverse);
                    }
                }
            }
        }
    }
}

impl Preconditioner for GmgHierarchy {
    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        self.vcycle_into(r, z);
    }
}

/// One Gauss–Seidel half-sweep over the nodes of checkerboard `color`
/// (`(i + j) mod 2`), updating in place. The Q1 9-point stencil couples
/// diagonal neighbours, which share a colour, so within-colour update
/// order matters: the adjoint sweep (`descending = true`, used for
/// post-smoothing) must visit nodes in reverse order for the V-cycle to
/// stay symmetric.
fn gauss_seidel_color(lev: &Level, b: &[f64], x: &mut [f64], color: usize, descending: bool) {
    let np = lev.n + 1;
    let update = |x: &mut [f64], idx: usize| {
        let (cols, vals) = lev.a.row(idx);
        let mut s = b[idx];
        for (&c, &v) in cols.iter().zip(vals) {
            if c != idx {
                s -= v * x[c];
            }
        }
        x[idx] = s * lev.inv_diag[idx];
    };
    if descending {
        for j in (0..np).rev() {
            let start = (color + j) % 2;
            for i in (start..np).step_by(2).rev() {
                update(x, j * np + i);
            }
        }
    } else {
        for j in 0..np {
            // nodes of the requested colour in row j: i ≡ color + j (mod 2)
            let start = (color + j) % 2;
            for i in (start..np).step_by(2) {
                update(x, j * np + i);
            }
        }
    }
}

/// Full-weighting restriction `b_c = Pᵀ r_f` on the node grid: coarse
/// node `(I, J)` sits at fine node `(2I, 2J)` and gathers its fine
/// neighbours with weights 1 (centre), 1/2 (edges), 1/4 (corners);
/// stencil points outside the grid are dropped. Fixed coarse nodes are
/// zeroed so Dirichlet rows receive no spurious coarse correction.
fn restrict_full_weighting(
    fine_n: usize,
    r_fine: &[f64],
    coarse_n: usize,
    b_coarse: &mut [f64],
    fixed_coarse: &[bool],
) {
    debug_assert_eq!(coarse_n * 2, fine_n);
    let fnp = fine_n + 1;
    let cnp = coarse_n + 1;
    for jc in 0..cnp {
        let jf = 2 * jc;
        for ic in 0..cnp {
            let idx_c = jc * cnp + ic;
            if fixed_coarse[idx_c] {
                b_coarse[idx_c] = 0.0;
                continue;
            }
            let i_f = 2 * ic;
            let mut s = r_fine[jf * fnp + i_f];
            // edge neighbours (weight 1/2)
            if i_f > 0 {
                s += 0.5 * r_fine[jf * fnp + i_f - 1];
            }
            if i_f < fine_n {
                s += 0.5 * r_fine[jf * fnp + i_f + 1];
            }
            if jf > 0 {
                s += 0.5 * r_fine[(jf - 1) * fnp + i_f];
            }
            if jf < fine_n {
                s += 0.5 * r_fine[(jf + 1) * fnp + i_f];
            }
            // corner neighbours (weight 1/4)
            if i_f > 0 && jf > 0 {
                s += 0.25 * r_fine[(jf - 1) * fnp + i_f - 1];
            }
            if i_f < fine_n && jf > 0 {
                s += 0.25 * r_fine[(jf - 1) * fnp + i_f + 1];
            }
            if i_f > 0 && jf < fine_n {
                s += 0.25 * r_fine[(jf + 1) * fnp + i_f - 1];
            }
            if i_f < fine_n && jf < fine_n {
                s += 0.25 * r_fine[(jf + 1) * fnp + i_f + 1];
            }
            b_coarse[idx_c] = s;
        }
    }
}

/// Bilinear prolongation: adds the interpolated coarse correction to the
/// fine iterate (`x_f += P x_c`). Fine nodes coinciding with coarse
/// nodes inject; edge midpoints average two parents; cell centres
/// average four.
fn prolong_add_bilinear(coarse_n: usize, x_coarse: &[f64], fine_n: usize, x_fine: &mut [f64]) {
    debug_assert_eq!(coarse_n * 2, fine_n);
    let fnp = fine_n + 1;
    let cnp = coarse_n + 1;
    for jf in 0..fnp {
        let jc = jf / 2;
        let j_odd = jf % 2 == 1;
        for i_f in 0..fnp {
            let ic = i_f / 2;
            let i_odd = i_f % 2 == 1;
            let corr = match (i_odd, j_odd) {
                (false, false) => x_coarse[jc * cnp + ic],
                (true, false) => 0.5 * (x_coarse[jc * cnp + ic] + x_coarse[jc * cnp + ic + 1]),
                (false, true) => 0.5 * (x_coarse[jc * cnp + ic] + x_coarse[(jc + 1) * cnp + ic]),
                (true, true) => {
                    0.25 * (x_coarse[jc * cnp + ic]
                        + x_coarse[jc * cnp + ic + 1]
                        + x_coarse[(jc + 1) * cnp + ic]
                        + x_coarse[(jc + 1) * cnp + ic + 1])
                }
            };
            x_fine[jf * fnp + i_f] += corr;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::{cg, IdentityPrecond};
    use crate::sparse::CooMatrix;

    /// Q1 Laplace operator on an `n × n` element grid with homogeneous
    /// Dirichlet conditions on the whole boundary, eliminated
    /// symmetrically (identity rows, dropped couplings). Interior nodes
    /// carry the classical 9-point stencil: 8/3 centre, −1/3 for all
    /// eight neighbours — exactly what `uq-fem`'s assembly produces for
    /// `κ ≡ 1`, so the coarse re-discretization matches the Galerkin
    /// operator and the cycle converges at textbook rates.
    fn q1_laplace_dirichlet(n: usize) -> (CsrMatrix, Vec<bool>) {
        let np = n + 1;
        let nodes = np * np;
        let fixed: Vec<bool> = (0..nodes)
            .map(|idx| {
                let (i, j) = (idx % np, idx / np);
                i == 0 || i == n || j == 0 || j == n
            })
            .collect();
        let mut coo = CooMatrix::new(nodes, nodes);
        for idx in 0..nodes {
            if fixed[idx] {
                coo.push(idx, idx, 1.0);
                continue;
            }
            let (i, j) = (idx % np, idx / np);
            coo.push(idx, idx, 8.0 / 3.0);
            for dj in -1i64..=1 {
                for di in -1i64..=1 {
                    if di == 0 && dj == 0 {
                        continue;
                    }
                    let ni = (i as i64 + di) as usize;
                    let nj = (j as i64 + dj) as usize;
                    let nidx = nj * np + ni;
                    if !fixed[nidx] {
                        coo.push(idx, nidx, -1.0 / 3.0);
                    }
                }
            }
        }
        (coo.to_csr(), fixed)
    }

    fn hierarchy(fine_n: usize, smoother: Smoother) -> GmgHierarchy {
        let mut specs = Vec::new();
        let mut n = fine_n;
        loop {
            let (matrix, fixed) = q1_laplace_dirichlet(n);
            specs.push(GmgLevelSpec { n, matrix, fixed });
            if !n.is_multiple_of(2) || n <= 4 {
                break;
            }
            n /= 2;
        }
        GmgHierarchy::new(specs, smoother, 1, 1)
    }

    fn interior_rhs(n: usize) -> Vec<f64> {
        let np = n + 1;
        (0..np * np)
            .map(|idx| {
                let (i, j) = (idx % np, idx / np);
                if i == 0 || i == n || j == 0 || j == n {
                    0.0
                } else {
                    ((i * 13 + j * 7) % 5) as f64 - 2.0
                }
            })
            .collect()
    }

    #[test]
    fn standalone_mg_matches_cg_solution() {
        for smoother in [
            Smoother::RedBlackGaussSeidel,
            Smoother::WeightedJacobi { omega: 0.8 },
        ] {
            let h = hierarchy(16, smoother);
            let b = interior_rhs(16);
            let mut x = vec![0.0; b.len()];
            let stats = h.solve(&b, &mut x, SolverOptions::default());
            assert!(stats.converged, "MG stalled at {}", stats.residual);
            let reference = cg(
                h.matrix(0),
                &b,
                None,
                &IdentityPrecond,
                SolverOptions::default(),
            );
            assert!(crate::vector::max_abs_diff(&x, &reference.x) < 1e-7);
        }
    }

    #[test]
    fn standalone_mg_converges_fast() {
        let h = hierarchy(32, Smoother::RedBlackGaussSeidel);
        let b = interior_rhs(32);
        let mut x = vec![0.0; b.len()];
        let stats = h.solve(&b, &mut x, SolverOptions::default());
        assert!(stats.converged);
        assert!(
            stats.iterations <= 15,
            "V(1,1) should converge in ≲15 cycles, took {}",
            stats.iterations
        );
    }

    #[test]
    fn mg_preconditioned_cg_iterations_are_mesh_independent() {
        let mut iters = Vec::new();
        for n in [8usize, 16, 32] {
            let h = hierarchy(n, Smoother::RedBlackGaussSeidel);
            let b = interior_rhs(n);
            let r = cg(h.matrix(0), &b, None, &h, SolverOptions::default());
            assert!(r.converged);
            iters.push(r.iterations);
        }
        let (min, max) = (*iters.iter().min().unwrap(), *iters.iter().max().unwrap());
        assert!(
            max <= min + 2,
            "MG-CG iteration counts should be flat across meshes: {iters:?}"
        );
    }

    #[test]
    fn vcycle_is_symmetric() {
        // ⟨B e_i, e_j⟩ = ⟨e_i, B e_j⟩ for the V-cycle operator B — the
        // requirement for use inside CG. Checked on a sample of index
        // pairs for both smoothers.
        for smoother in [
            Smoother::RedBlackGaussSeidel,
            Smoother::WeightedJacobi { omega: 0.8 },
        ] {
            let h = hierarchy(8, smoother);
            let nodes = h.matrix(0).rows();
            let mut zi = vec![0.0; nodes];
            let mut zj = vec![0.0; nodes];
            for (i, j) in [(20usize, 40usize), (31, 55), (22, 23)] {
                let mut ei = vec![0.0; nodes];
                let mut ej = vec![0.0; nodes];
                ei[i] = 1.0;
                ej[j] = 1.0;
                h.vcycle_into(&ei, &mut zi);
                h.vcycle_into(&ej, &mut zj);
                let bij = zi[j];
                let bji = zj[i];
                assert!(
                    (bij - bji).abs() < 1e-12 * bij.abs().max(1.0),
                    "V-cycle not symmetric: B[{i},{j}] = {bij} vs B[{j},{i}] = {bji}"
                );
            }
        }
    }

    #[test]
    fn fixed_nodes_keep_zero_correction() {
        let h = hierarchy(8, Smoother::RedBlackGaussSeidel);
        let b = interior_rhs(8);
        let mut z = vec![0.0; b.len()];
        h.vcycle_into(&b, &mut z);
        let np = 9;
        for idx in 0..b.len() {
            let (i, j) = (idx % np, idx / np);
            if i == 0 || i == 8 || j == 0 || j == 8 {
                // identity row with zero rhs: the cycle must return 0 exactly
                assert_eq!(z[idx], 0.0, "boundary node {idx} picked up correction");
            }
        }
    }

    #[test]
    fn refill_and_refresh_track_value_changes() {
        let mut h = hierarchy(8, Smoother::RedBlackGaussSeidel);
        let b = interior_rhs(8);
        let before = cg(h.matrix(0), &b, None, &h, SolverOptions::default());
        assert!(before.converged);
        // scale every level by 2: the solution must exactly halve
        for l in 0..h.n_levels() {
            for v in h.matrix_mut(l).values_mut() {
                *v *= 2.0;
            }
        }
        h.refresh();
        let after = cg(h.matrix(0), &b, None, &h, SolverOptions::default());
        assert!(after.converged);
        for (xa, xb) in after.x.iter().zip(&before.x) {
            assert!((2.0 * xa - xb).abs() < 1e-7, "scaled solve mismatch");
        }
    }

    #[test]
    #[should_panic(expected = "at least two levels")]
    fn single_level_hierarchy_panics() {
        let (matrix, fixed) = q1_laplace_dirichlet(4);
        GmgHierarchy::new(
            vec![GmgLevelSpec {
                n: 4,
                matrix,
                fixed,
            }],
            Smoother::RedBlackGaussSeidel,
            1,
            1,
        );
    }
}
