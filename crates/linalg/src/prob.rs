//! Probability kernels: standard-normal sampling (Box–Muller, no external
//! distribution crate), Gaussian log-densities, and a Cholesky-based
//! multivariate normal used for proposal distributions and priors.

use crate::dense::DenseMatrix;
use rand::{Rng, RngExt};

/// Half of `log(2π)`, the normalization constant of the standard normal.
pub const HALF_LOG_TWO_PI: f64 = 0.918_938_533_204_672_8;

/// Draw one standard-normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // avoid log(0): u1 in (0, 1]
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fill a vector with iid standard-normal draws.
pub fn standard_normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| standard_normal(rng)).collect()
}

/// Log-density of `N(mean, sd²)` at `x`.
#[inline]
pub fn normal_logpdf(x: f64, mean: f64, sd: f64) -> f64 {
    debug_assert!(sd > 0.0);
    let z = (x - mean) / sd;
    -0.5 * z * z - sd.ln() - HALF_LOG_TWO_PI
}

/// Log-density of an isotropic Gaussian `N(mean, sd² I)` at `x`.
pub fn isotropic_gaussian_logpdf(x: &[f64], mean: &[f64], sd: f64) -> f64 {
    assert_eq!(
        x.len(),
        mean.len(),
        "isotropic_gaussian_logpdf: length mismatch"
    );
    let n = x.len() as f64;
    let ss: f64 = x
        .iter()
        .zip(mean)
        .map(|(xi, mi)| {
            let z = (xi - mi) / sd;
            z * z
        })
        .sum();
    -0.5 * ss - n * (sd.ln() + HALF_LOG_TWO_PI)
}

/// Multivariate normal distribution `N(mean, Σ)` backed by the Cholesky
/// factor of `Σ`.
#[derive(Clone, Debug)]
pub struct MultivariateNormal {
    mean: Vec<f64>,
    chol: DenseMatrix,
    log_norm_const: f64,
}

impl MultivariateNormal {
    /// Build from mean and covariance.
    ///
    /// Returns `None` if the covariance is not symmetric positive definite.
    pub fn new(mean: Vec<f64>, cov: &DenseMatrix) -> Option<Self> {
        assert_eq!(mean.len(), cov.rows(), "MultivariateNormal: shape mismatch");
        let chol = cov.cholesky()?;
        let n = mean.len() as f64;
        let log_det_half: f64 = (0..mean.len()).map(|i| chol[(i, i)].ln()).sum();
        Some(Self {
            mean,
            chol,
            log_norm_const: -n * HALF_LOG_TWO_PI - log_det_half,
        })
    }

    /// Isotropic `N(mean, sd² I)` convenience constructor.
    pub fn isotropic(mean: Vec<f64>, sd: f64) -> Self {
        assert!(
            sd > 0.0,
            "MultivariateNormal::isotropic: sd must be positive"
        );
        let n = mean.len();
        let cov = DenseMatrix::from_fn(n, n, |i, j| if i == j { sd * sd } else { 0.0 });
        Self::new(mean, &cov).expect("isotropic covariance is SPD")
    }

    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Draw a sample `mean + L ξ` with `ξ ~ N(0, I)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let xi = standard_normal_vec(rng, self.dim());
        let mut out = self.mean.clone();
        for i in 0..self.dim() {
            for j in 0..=i {
                out[i] += self.chol[(i, j)] * xi[j];
            }
        }
        out
    }

    /// Log-density at `x`.
    pub fn logpdf(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "logpdf: dimension mismatch");
        let diff: Vec<f64> = x.iter().zip(&self.mean).map(|(a, b)| a - b).collect();
        // solve L y = diff; then quadratic form is ‖y‖²
        let y = self.chol.solve_lower(&diff);
        let quad: f64 = y.iter().map(|v| v * v).sum();
        self.log_norm_const - 0.5 * quad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let xs = standard_normal_vec(&mut rng, n);
        let mean = crate::vector::mean(&xs);
        let var = crate::vector::variance(&xs);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_logpdf_matches_closed_form() {
        // N(0,1) at 0 is 1/sqrt(2 pi)
        let expect = -(2.0 * std::f64::consts::PI).sqrt().ln();
        assert!((normal_logpdf(0.0, 0.0, 1.0) - expect).abs() < 1e-14);
        // shift/scale invariance
        assert!(
            (normal_logpdf(3.0, 1.0, 2.0) - (normal_logpdf(1.0, 0.0, 1.0) - 2.0f64.ln())).abs()
                < 1e-14
        );
    }

    #[test]
    fn isotropic_logpdf_sums_univariate() {
        let x = [0.5, -1.0, 2.0];
        let m = [0.0, 0.0, 1.0];
        let sd = 1.5;
        let expect: f64 = x
            .iter()
            .zip(&m)
            .map(|(xi, mi)| normal_logpdf(*xi, *mi, sd))
            .sum();
        assert!((isotropic_gaussian_logpdf(&x, &m, sd) - expect).abs() < 1e-13);
    }

    #[test]
    fn mvn_isotropic_matches_isotropic_helper() {
        let mvn = MultivariateNormal::isotropic(vec![1.0, -1.0], 0.7);
        let x = [0.3, 0.4];
        let expect = isotropic_gaussian_logpdf(&x, &[1.0, -1.0], 0.7);
        assert!((mvn.logpdf(&x) - expect).abs() < 1e-12);
    }

    #[test]
    fn mvn_correlated_logpdf() {
        // 2-D N(0, [[2, 0.5], [0.5, 1]]); check against direct formula
        let cov = DenseMatrix::from_vec(2, 2, vec![2.0, 0.5, 0.5, 1.0]);
        let mvn = MultivariateNormal::new(vec![0.0, 0.0], &cov).unwrap();
        let det: f64 = 2.0 * 1.0 - 0.25;
        let x = [1.0, 0.5];
        // inverse of [[2,.5],[.5,1]] = 1/det [[1,-.5],[-.5,2]]
        let quad = (x[0] * (1.0 * x[0] - 0.5 * x[1]) + x[1] * (-0.5 * x[0] + 2.0 * x[1])) / det;
        let expect = -0.5 * quad - 0.5 * det.ln() - 2.0 * HALF_LOG_TWO_PI;
        assert!((mvn.logpdf(&x) - expect).abs() < 1e-12);
    }

    #[test]
    fn mvn_sample_covariance_converges() {
        let cov = DenseMatrix::from_vec(2, 2, vec![2.0, 0.8, 0.8, 1.0]);
        let mvn = MultivariateNormal::new(vec![3.0, -2.0], &cov).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let samples: Vec<Vec<f64>> = (0..n).map(|_| mvn.sample(&mut rng)).collect();
        let mean0 = crate::vector::mean(&samples.iter().map(|s| s[0]).collect::<Vec<_>>());
        let mean1 = crate::vector::mean(&samples.iter().map(|s| s[1]).collect::<Vec<_>>());
        assert!((mean0 - 3.0).abs() < 0.03);
        assert!((mean1 + 2.0).abs() < 0.03);
        let cov01: f64 = samples
            .iter()
            .map(|s| (s[0] - mean0) * (s[1] - mean1))
            .sum::<f64>()
            / (n - 1) as f64;
        assert!((cov01 - 0.8).abs() < 0.05, "cov01 {cov01}");
    }

    #[test]
    fn mvn_rejects_indefinite_covariance() {
        let cov = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(MultivariateNormal::new(vec![0.0, 0.0], &cov).is_none());
    }
}
