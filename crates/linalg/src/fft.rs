//! Minimal complex arithmetic and an iterative radix-2 FFT, used by the
//! circulant-embedding Gaussian random field sampler (Dietrich–Newsam).

/// Complex number with `f64` components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `inverse = true` computes the unnormalized inverse transform; divide by
/// `n` yourself or use [`ifft`].
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft: length must be a power of two");
    if n <= 1 {
        return;
    }
    // bit-reversal permutation
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Forward FFT returning a new vector.
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let mut data = input.to_vec();
    fft_in_place(&mut data, false);
    data
}

/// Normalized inverse FFT returning a new vector.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let mut data = input.to_vec();
    fft_in_place(&mut data, true);
    let scale = 1.0 / data.len() as f64;
    for v in &mut data {
        *v = *v * scale;
    }
    data
}

/// 2-D FFT on row-major data of shape `rows × cols` (both powers of two).
pub fn fft2(data: &mut [Complex], rows: usize, cols: usize, inverse: bool) {
    assert_eq!(data.len(), rows * cols, "fft2: shape mismatch");
    // transform rows
    for r in 0..rows {
        fft_in_place(&mut data[r * cols..(r + 1) * cols], inverse);
    }
    // transform columns via scratch
    let mut col = vec![Complex::ZERO; rows];
    for c in 0..cols {
        for r in 0..rows {
            col[r] = data[r * cols + c];
        }
        fft_in_place(&mut col, inverse);
        for r in 0..rows {
            data[r * cols + c] = col[r];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, tol: f64) {
        assert!(
            (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol,
            "{a:?} != {b:?}"
        );
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::new(1.0, 0.0);
        let y = fft(&x);
        for v in y {
            assert_close(v, Complex::new(1.0, 0.0), 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let x = vec![Complex::new(1.0, 0.0); 8];
        let y = fft(&x);
        assert_close(y[0], Complex::new(8.0, 0.0), 1e-12);
        for v in &y[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            assert_close(*a, *b, 1e-12);
        }
    }

    #[test]
    fn fft_matches_dft_definition() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let y = fft(&x);
        let n = x.len();
        for k in 0..n {
            let mut s = Complex::ZERO;
            for (j, xj) in x.iter().enumerate() {
                s = s + *xj * Complex::cis(-2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64);
            }
            assert_close(y[k], s, 1e-9);
        }
    }

    #[test]
    fn parseval_identity() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64).cos(), 0.0))
            .collect();
        let y = fft(&x);
        let ex: f64 = x.iter().map(|v| v.abs() * v.abs()).sum();
        let ey: f64 = y.iter().map(|v| v.abs() * v.abs()).sum::<f64>() / x.len() as f64;
        assert!((ex - ey).abs() < 1e-9);
    }

    #[test]
    fn fft2_roundtrip() {
        let rows = 4;
        let cols = 8;
        let orig: Vec<Complex> = (0..rows * cols)
            .map(|i| Complex::new(i as f64, (i as f64).sqrt()))
            .collect();
        let mut data = orig.clone();
        fft2(&mut data, rows, cols, false);
        fft2(&mut data, rows, cols, true);
        let scale = 1.0 / (rows * cols) as f64;
        for (a, b) in data.iter().zip(&orig) {
            assert_close(*a * scale, *b, 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut x = vec![Complex::ZERO; 6];
        fft_in_place(&mut x, false);
    }
}
