//! Dense row-major matrices with the factorizations the UQ stack needs:
//! Cholesky (for Gaussian proposal covariances), cyclic-Jacobi symmetric
//! eigendecomposition (for Karhunen–Loève modes) and LU with partial
//! pivoting (small saddle-point systems in the DG limiter).

use crate::vector;

/// Dense row-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: shape mismatch");
        Self { rows, cols, data }
    }

    /// Build an `n × n` matrix from a function of the index pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix–vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| vector::dot(self.row(i), x))
            .collect()
    }

    /// Matrix–vector product into a caller-provided buffer (keeps the
    /// per-step `κ = exp(Φθ)` evaluation allocation-free).
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec_into: dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec_into: output dimension mismatch");
        for (yi, i) in y.iter_mut().zip(0..self.rows) {
            *yi = vector::dot(self.row(i), x);
        }
    }

    /// Transposed matrix–vector product `Aᵀ x`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t: dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            for (yj, aij) in y.iter_mut().zip(self.row(i)) {
                *yj += aij * xi;
            }
        }
        y
    }

    /// Matrix product `A B`.
    pub fn matmul(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, b.rows, "matmul: dimension mismatch");
        let mut c = DenseMatrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    c[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        c
    }

    /// Transpose as a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
    ///
    /// Returns `None` if the matrix is not (numerically) symmetric positive
    /// definite.
    pub fn cholesky(&self) -> Option<DenseMatrix> {
        assert_eq!(self.rows, self.cols, "cholesky: matrix must be square");
        let mut l = DenseMatrix::zeros(self.rows, self.rows);
        l.cholesky_from(self).then_some(l)
    }

    /// Overwrite `self` (an `n × n` scratch matrix) with the lower
    /// Cholesky factor of `a`, allocating nothing. Returns `false` (with
    /// `self` in an unspecified state) when `a` is not numerically SPD.
    /// This is the refactorization path for repeatedly refilled
    /// operators (e.g. the multigrid coarse level).
    pub fn cholesky_from(&mut self, a: &DenseMatrix) -> bool {
        assert_eq!(a.rows, a.cols, "cholesky_from: matrix must be square");
        let n = a.rows;
        assert_eq!(self.rows, n, "cholesky_from: scratch shape mismatch");
        assert_eq!(self.cols, n, "cholesky_from: scratch shape mismatch");
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= self[(i, k)] * self[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return false;
                    }
                    self[(i, j)] = s.sqrt();
                } else {
                    self[(i, j)] = s / self[(j, j)];
                }
            }
            for j in i + 1..n {
                self[(i, j)] = 0.0;
            }
        }
        true
    }

    /// Solve `L y = b` for lower-triangular `L` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.rows;
        assert_eq!(b.len(), n, "solve_lower: dimension mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self[(i, j)] * y[j];
            }
            y[i] = s / self[(i, i)];
        }
        y
    }

    /// Solve `Lᵀ x = y` for lower-triangular `L` (back substitution on the
    /// transpose).
    pub fn solve_lower_t(&self, y: &[f64]) -> Vec<f64> {
        let n = self.rows;
        assert_eq!(y.len(), n, "solve_lower_t: dimension mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= self[(j, i)] * x[j];
            }
            x[i] = s / self[(i, i)];
        }
        x
    }

    /// Solve `L Lᵀ x = b` in place, treating `self` as the lower Cholesky
    /// factor `L` (as returned by [`cholesky`](Self::cholesky)). Both
    /// substitutions run inside `x`, so the solve allocates nothing —
    /// this is the multigrid coarse-level solver's hot path.
    pub fn solve_cholesky_into(&self, b: &[f64], x: &mut [f64]) {
        let n = self.rows;
        assert_eq!(b.len(), n, "solve_cholesky_into: rhs dimension mismatch");
        assert_eq!(x.len(), n, "solve_cholesky_into: output dimension mismatch");
        // forward: L y = b
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self[(i, j)] * x[j];
            }
            x[i] = s / self[(i, i)];
        }
        // backward: Lᵀ x = y
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in i + 1..n {
                s -= self[(j, i)] * x[j];
            }
            x[i] = s / self[(i, i)];
        }
    }

    /// Solve `A x = b` by LU with partial pivoting. Returns `None` when the
    /// matrix is numerically singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve: matrix must be square");
        let n = self.rows;
        assert_eq!(b.len(), n, "solve: dimension mismatch");
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // partial pivot
            let mut p = k;
            let mut best = a[piv[k] * n + k].abs();
            for r in k + 1..n {
                let v = a[piv[r] * n + k].abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best < 1e-300 {
                return None;
            }
            piv.swap(k, p);
            let pk = piv[k];
            let akk = a[pk * n + k];
            for r in k + 1..n {
                let pr = piv[r];
                let f = a[pr * n + k] / akk;
                a[pr * n + k] = f;
                for c in k + 1..n {
                    a[pr * n + c] -= f * a[pk * n + c];
                }
                x[pr] -= f * x[pk];
            }
        }
        // back substitution
        let mut out = vec![0.0; n];
        for i in (0..n).rev() {
            let pi = piv[i];
            let mut s = x[pi];
            for j in i + 1..n {
                s -= a[pi * n + j] * out[j];
            }
            out[i] = s / a[pi * n + i];
        }
        Some(out)
    }

    /// Eigendecomposition of a symmetric matrix via the cyclic Jacobi method.
    ///
    /// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted in
    /// descending order; column `k` of the returned matrix is the
    /// eigenvector for `eigenvalues[k]`.
    pub fn sym_eigen(&self) -> (Vec<f64>, DenseMatrix) {
        assert_eq!(self.rows, self.cols, "sym_eigen: matrix must be square");
        let n = self.rows;
        let mut a = self.clone();
        let mut v = DenseMatrix::identity(n);
        let max_sweeps = 100;
        for _ in 0..max_sweeps {
            let mut off = 0.0;
            for i in 0..n {
                for j in i + 1..n {
                    off += a[(i, j)] * a[(i, j)];
                }
            }
            if off.sqrt() < 1e-14 {
                break;
            }
            for p in 0..n {
                for q in p + 1..n {
                    let apq = a[(p, q)];
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = a[(p, p)];
                    let aqq = a[(q, q)];
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = if tau >= 0.0 {
                        1.0 / (tau + (1.0 + tau * tau).sqrt())
                    } else {
                        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    // rotate rows/cols p and q of a
                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a[(i, i)], i)).collect();
        pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap());
        let eigvals: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let eigvecs = DenseMatrix::from_fn(n, n, |i, k| v[(i, pairs[k].1)]);
        (eigvals, eigvecs)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix {
        DenseMatrix::from_vec(3, 3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0])
    }

    #[test]
    fn identity_matvec_is_identity() {
        let i = DenseMatrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(i.matvec(&x), x);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = vec![1.0, -1.0];
        assert_eq!(a.matvec_t(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = a.cholesky().expect("SPD");
        let llt = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((llt[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn triangular_solves_invert_cholesky() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let y = l.solve_lower(&b);
        let x = l.solve_lower_t(&y);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn lu_solve_matches_known_solution() {
        let a = DenseMatrix::from_vec(3, 3, vec![0.0, 2.0, 1.0, 1.0, 1.0, 1.0, 2.0, 0.0, 3.0]);
        let x_true = vec![1.0, -1.0, 2.0];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).expect("nonsingular");
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn lu_solve_detects_singular() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(a.solve(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn jacobi_eigen_diagonalizes_known_matrix() {
        // eigenvalues of [[2,1],[1,2]] are 3 and 1
        let a = DenseMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let (vals, vecs) = a.sym_eigen();
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
        // A v = lambda v for each column
        for k in 0..2 {
            let v: Vec<f64> = (0..2).map(|i| vecs[(i, k)]).collect();
            let av = a.matvec(&v);
            for i in 0..2 {
                assert!((av[i] - vals[k] * v[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn jacobi_eigen_orthonormal_vectors() {
        let a = spd3();
        let (_, vecs) = a.sym_eigen();
        let vtv = vecs.transpose().matmul(&vecs);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn eigen_trace_and_det_invariants() {
        let a = spd3();
        let (vals, _) = a.sym_eigen();
        let trace: f64 = (0..3).map(|i| a[(i, i)]).sum();
        assert!((vals.iter().sum::<f64>() - trace).abs() < 1e-10);
    }
}
