//! Property-based tests (proptest) of the linear-algebra kernels.

use proptest::prelude::*;
use uq_linalg::dense::DenseMatrix;
use uq_linalg::quadrature::integrate;
use uq_linalg::solvers::{cg, IdentityPrecond, SolverOptions};
use uq_linalg::sparse::CooMatrix;
use uq_linalg::vector;

/// Random SPD matrix via A = B Bᵀ + (n)·I.
fn spd_from(rows: &[Vec<f64>]) -> DenseMatrix {
    let n = rows.len();
    let b = DenseMatrix::from_fn(n, n, |i, j| rows[i][j]);
    let mut a = b.matmul(&b.transpose());
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

proptest! {
    #[test]
    fn triangle_inequality(
        x in prop::collection::vec(-1e3f64..1e3, 1..20),
        shift in -10f64..10.0,
    ) {
        let y: Vec<f64> = x.iter().map(|v| v * 0.5 + shift).collect();
        let sum = vector::add(&x, &y);
        prop_assert!(vector::norm2(&sum) <= vector::norm2(&x) + vector::norm2(&y) + 1e-9);
    }

    #[test]
    fn matvec_is_linear(
        rows in prop::collection::vec(prop::collection::vec(-5f64..5.0, 4), 4),
        x in prop::collection::vec(-5f64..5.0, 4),
        y in prop::collection::vec(-5f64..5.0, 4),
        a in -3f64..3.0,
    ) {
        let m = DenseMatrix::from_fn(4, 4, |i, j| rows[i][j]);
        // M(a x + y) = a M x + M y
        let ax_y: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| a * xi + yi).collect();
        let lhs = m.matvec(&ax_y);
        let mx = m.matvec(&x);
        let my = m.matvec(&y);
        for i in 0..4 {
            prop_assert!((lhs[i] - (a * mx[i] + my[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_solve_inverts_spd(
        rows in prop::collection::vec(prop::collection::vec(-2f64..2.0, 4), 4),
        b in prop::collection::vec(-5f64..5.0, 4),
    ) {
        let a = spd_from(&rows);
        let l = a.cholesky().expect("SPD by construction");
        let y = l.solve_lower(&b);
        let x = l.solve_lower_t(&y);
        let r = a.matvec(&x);
        for i in 0..4 {
            prop_assert!((r[i] - b[i]).abs() < 1e-7, "residual {}", r[i] - b[i]);
        }
    }

    #[test]
    fn eigenvalues_of_spd_are_positive_and_sum_to_trace(
        rows in prop::collection::vec(prop::collection::vec(-2f64..2.0, 3), 3),
    ) {
        let a = spd_from(&rows);
        let (vals, _) = a.sym_eigen();
        let trace: f64 = (0..3).map(|i| a[(i, i)]).sum();
        prop_assert!(vals.iter().all(|&v| v > 0.0));
        prop_assert!((vals.iter().sum::<f64>() - trace).abs() < 1e-8 * trace.abs().max(1.0));
    }

    #[test]
    fn cg_solves_random_spd_systems(
        rows in prop::collection::vec(prop::collection::vec(-2f64..2.0, 5), 5),
        b in prop::collection::vec(-5f64..5.0, 5),
    ) {
        let a = spd_from(&rows);
        // densify into CSR
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..5 {
            for j in 0..5 {
                coo.push(i, j, a[(i, j)]);
            }
        }
        let csr = coo.to_csr();
        let r = cg(&csr, &b, None, &IdentityPrecond, SolverOptions::default());
        prop_assert!(r.converged, "residual {}", r.residual);
        let back = csr.matvec(&r.x);
        for i in 0..5 {
            prop_assert!((back[i] - b[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn csr_transpose_identity_dot(
        entries in prop::collection::vec((0usize..6, 0usize..6, -5f64..5.0), 0..24),
        x in prop::collection::vec(-3f64..3.0, 6),
        y in prop::collection::vec(-3f64..3.0, 6),
    ) {
        // for symmetric A: x·(A y) == y·(A x)
        let mut coo = CooMatrix::new(6, 6);
        for &(r, c, v) in &entries {
            coo.push(r, c, v);
            if r != c {
                coo.push(c, r, v);
            }
        }
        let a = coo.to_csr();
        let lhs = vector::dot(&x, &a.matvec(&y));
        let rhs = vector::dot(&y, &a.matvec(&x));
        prop_assert!((lhs - rhs).abs() < 1e-8 * (lhs.abs().max(1.0)));
    }

    #[test]
    fn gauss_legendre_integrates_polynomials_exactly(
        coeffs in prop::collection::vec(-3f64..3.0, 1..6),
        a in -2f64..0.0,
        width in 0.1f64..3.0,
    ) {
        let b = a + width;
        let eval = |x: f64| -> f64 {
            coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
        };
        // exact antiderivative
        let anti = |x: f64| -> f64 {
            coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| c * x.powi(k as i32 + 1) / (k as f64 + 1.0))
                .sum()
        };
        let exact = anti(b) - anti(a);
        let n = coeffs.len().div_ceil(2).max(1); // GL(n) exact to degree 2n-1
        let got = integrate(eval, a, b, n);
        prop_assert!((got - exact).abs() < 1e-9 * exact.abs().max(1.0), "{got} vs {exact}");
    }
}
