//! The model-agnostic sampling-problem interface.
//!
//! This is the Rust analogue of MUQ's `AbstractSamplingProblem` (paper
//! Fig. 6): a target density up to a constant, plus an optional quantity of
//! interest that is evaluated only for accepted states — discarded MCMC
//! proposals never pay for a QOI evaluation, which matters when the QOI
//! requires post-processing a PDE solution.

/// A target distribution to sample from, with an optional quantity of
/// interest (QOI) derived from the same forward evaluation.
///
/// Implementations may cache forward-model results between `log_density`
/// and `qoi` calls for the same parameter (both take `&mut self` for this
/// reason); the chain driver always calls `qoi` with the most recently
/// evaluated accepted parameter.
pub trait SamplingProblem: Send {
    /// Parameter-space dimension.
    fn dim(&self) -> usize;

    /// Log target density (up to an additive constant) at `theta`.
    ///
    /// Return `f64::NEG_INFINITY` for unphysical parameters — the kernel
    /// then rejects the proposal outright (the paper's tsunami model does
    /// this for displacements on dry land).
    fn log_density(&mut self, theta: &[f64]) -> f64;

    /// Quantity of interest at `theta`. Default: the parameter itself
    /// (the tsunami application's choice).
    fn qoi(&mut self, theta: &[f64]) -> Vec<f64> {
        theta.to_vec()
    }

    /// Dimension of the QOI vector.
    fn qoi_dim(&self) -> usize {
        self.dim()
    }
}

/// A simple analytic problem: iid Gaussian target `N(mean, sd² I)`.
///
/// Used throughout the test-suites as a ground-truth target.
#[derive(Clone, Debug)]
pub struct GaussianTarget {
    pub mean: Vec<f64>,
    pub sd: f64,
}

impl GaussianTarget {
    pub fn new(mean: Vec<f64>, sd: f64) -> Self {
        assert!(sd > 0.0, "GaussianTarget: sd must be positive");
        Self { mean, sd }
    }

    /// Standard normal in `dim` dimensions.
    pub fn standard(dim: usize) -> Self {
        Self::new(vec![0.0; dim], 1.0)
    }
}

impl SamplingProblem for GaussianTarget {
    fn dim(&self) -> usize {
        self.mean.len()
    }

    fn log_density(&mut self, theta: &[f64]) -> f64 {
        uq_linalg::prob::isotropic_gaussian_logpdf(theta, &self.mean, self.sd)
    }
}

/// A bimodal 1-D mixture target, handy for stress-testing proposals.
#[derive(Clone, Debug)]
pub struct BimodalTarget {
    pub separation: f64,
    pub sd: f64,
}

impl SamplingProblem for BimodalTarget {
    fn dim(&self) -> usize {
        1
    }

    fn log_density(&mut self, theta: &[f64]) -> f64 {
        let a = uq_linalg::prob::normal_logpdf(theta[0], -self.separation, self.sd);
        let b = uq_linalg::prob::normal_logpdf(theta[0], self.separation, self.sd);
        // log(0.5 e^a + 0.5 e^b) via log-sum-exp
        let m = a.max(b);
        m + ((a - m).exp() + (b - m).exp()).ln() - std::f64::consts::LN_2
    }
}

/// Wrap a closure as a [`SamplingProblem`] — the quickest way to couple a
/// user model, mirroring how MUQ lets arbitrary callables act as densities.
pub struct FnProblem<F: FnMut(&[f64]) -> f64 + Send> {
    dim: usize,
    f: F,
}

impl<F: FnMut(&[f64]) -> f64 + Send> FnProblem<F> {
    pub fn new(dim: usize, f: F) -> Self {
        Self { dim, f }
    }
}

impl<F: FnMut(&[f64]) -> f64 + Send> SamplingProblem for FnProblem<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn log_density(&mut self, theta: &[f64]) -> f64 {
        (self.f)(theta)
    }
}

impl SamplingProblem for Box<dyn SamplingProblem> {
    fn dim(&self) -> usize {
        self.as_ref().dim()
    }
    fn log_density(&mut self, theta: &[f64]) -> f64 {
        self.as_mut().log_density(theta)
    }
    fn qoi(&mut self, theta: &[f64]) -> Vec<f64> {
        self.as_mut().qoi(theta)
    }
    fn qoi_dim(&self) -> usize {
        self.as_ref().qoi_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_target_density_peaks_at_mean() {
        let mut t = GaussianTarget::new(vec![1.0, 2.0], 0.5);
        let at_mean = t.log_density(&[1.0, 2.0]);
        let off = t.log_density(&[1.5, 2.0]);
        assert!(at_mean > off);
    }

    #[test]
    fn default_qoi_is_identity() {
        let mut t = GaussianTarget::standard(3);
        assert_eq!(t.qoi(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        assert_eq!(t.qoi_dim(), 3);
    }

    #[test]
    fn bimodal_is_symmetric() {
        let mut t = BimodalTarget {
            separation: 2.0,
            sd: 0.5,
        };
        let a = t.log_density(&[1.3]);
        let b = t.log_density(&[-1.3]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn fn_problem_wraps_closure() {
        let mut p = FnProblem::new(2, |th: &[f64]| -(th[0] * th[0] + th[1] * th[1]));
        assert_eq!(p.dim(), 2);
        assert_eq!(p.log_density(&[1.0, 1.0]), -2.0);
    }
}
