//! Single-chain MCMC driver — the analogue of MUQ's `SingleChainMCMC`.

use crate::kernel::{mh_step, SamplingState};
use crate::problem::SamplingProblem;
use crate::proposal::Proposal;
use rand::Rng;

/// Burn-in and thinning controls.
#[derive(Clone, Copy, Debug)]
pub struct ChainConfig {
    /// Steps discarded before samples are recorded.
    pub burn_in: usize,
    /// Keep every `thin`-th post-burn-in state (1 = keep all).
    pub thin: usize,
}

impl Default for ChainConfig {
    fn default() -> Self {
        Self {
            burn_in: 0,
            thin: 1,
        }
    }
}

impl ChainConfig {
    pub fn with_burn_in(burn_in: usize) -> Self {
        Self { burn_in, thin: 1 }
    }
}

/// A Metropolis–Hastings chain over a [`SamplingProblem`].
///
/// The chain owns its problem and proposal; step-by-step execution
/// (`step`) is exposed so the multilevel controllers can interleave chains
/// on different levels, and `run` drives a fixed number of recorded
/// samples for the single-level use-case.
pub struct Chain<P: SamplingProblem, Q: Proposal> {
    problem: P,
    proposal: Q,
    config: ChainConfig,
    state: SamplingState,
    /// Recorded (post-burn-in, thinned) parameter samples.
    samples: Vec<Vec<f64>>,
    /// QOI values aligned with `samples`.
    qois: Vec<Vec<f64>>,
    steps_taken: usize,
    accepted: usize,
}

impl<P: SamplingProblem, Q: Proposal> Chain<P, Q> {
    /// Create a chain starting at `theta0` (evaluates the model once).
    pub fn new(mut problem: P, proposal: Q, theta0: Vec<f64>, config: ChainConfig) -> Self {
        assert_eq!(theta0.len(), problem.dim(), "Chain: wrong start dimension");
        assert!(config.thin >= 1, "Chain: thin must be >= 1");
        let state = SamplingState::initial(&mut problem, theta0);
        Self {
            problem,
            proposal,
            config,
            state,
            samples: Vec::new(),
            qois: Vec::new(),
            steps_taken: 0,
            accepted: 0,
        }
    }

    /// Advance one step; records the state if past burn-in and on the
    /// thinning stride. Returns whether the proposal was accepted.
    pub fn step(&mut self, rng: &mut dyn Rng) -> bool {
        let (state, accepted) = mh_step(&mut self.problem, &mut self.proposal, &self.state, rng);
        self.state = state;
        self.steps_taken += 1;
        self.accepted += accepted as usize;
        if self.steps_taken > self.config.burn_in
            && (self.steps_taken - self.config.burn_in - 1).is_multiple_of(self.config.thin)
        {
            self.samples.push(self.state.theta.clone());
            self.qois.push(self.state.qoi.clone());
        }
        accepted
    }

    /// Run until `n_samples` post-burn-in samples are recorded.
    pub fn run(&mut self, n_samples: usize, rng: &mut dyn Rng) {
        while self.samples.len() < n_samples {
            self.step(rng);
        }
    }

    /// Current chain state.
    pub fn state(&self) -> &SamplingState {
        &self.state
    }

    /// Recorded parameter samples.
    pub fn samples(&self) -> &[Vec<f64>] {
        &self.samples
    }

    /// Recorded QOI values.
    pub fn qois(&self) -> &[Vec<f64>] {
        &self.qois
    }

    /// Fraction of accepted proposals over all steps taken.
    pub fn acceptance_rate(&self) -> f64 {
        if self.steps_taken == 0 {
            0.0
        } else {
            self.accepted as f64 / self.steps_taken as f64
        }
    }

    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Trace of one parameter component across the recorded samples.
    pub fn component_trace(&self, k: usize) -> Vec<f64> {
        self.samples.iter().map(|s| s[k]).collect()
    }

    /// Trace of one QOI component across the recorded samples.
    pub fn qoi_trace(&self, k: usize) -> Vec<f64> {
        self.qois.iter().map(|q| q[k]).collect()
    }

    /// Consume the chain, returning `(samples, qois)`.
    pub fn into_samples(self) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        (self.samples, self.qois)
    }

    /// Access the wrapped problem (e.g. to read cached model output).
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// Access the proposal (e.g. to inspect adaptation state).
    pub fn proposal(&self) -> &Q {
        &self.proposal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::GaussianTarget;
    use crate::proposal::GaussianRandomWalk;
    use crate::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_chain(burn_in: usize, thin: usize) -> Chain<GaussianTarget, GaussianRandomWalk> {
        Chain::new(
            GaussianTarget::new(vec![1.0], 0.8),
            GaussianRandomWalk::new(1.0),
            vec![0.0],
            ChainConfig { burn_in, thin },
        )
    }

    #[test]
    fn burn_in_discards_samples() {
        let mut c = make_chain(10, 1);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            c.step(&mut rng);
        }
        assert_eq!(c.samples().len(), 0);
        c.step(&mut rng);
        assert_eq!(c.samples().len(), 1);
    }

    #[test]
    fn thinning_strides_samples() {
        let mut c = make_chain(0, 5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..21 {
            c.step(&mut rng);
        }
        // recorded at steps 1, 6, 11, 16, 21
        assert_eq!(c.samples().len(), 5);
    }

    #[test]
    fn run_reaches_target_count() {
        let mut c = make_chain(100, 2);
        let mut rng = StdRng::seed_from_u64(2);
        c.run(50, &mut rng);
        assert_eq!(c.samples().len(), 50);
        assert!(c.steps_taken() >= 100 + 50);
    }

    #[test]
    fn chain_recovers_target_moments() {
        let mut c = make_chain(500, 1);
        let mut rng = StdRng::seed_from_u64(3);
        c.run(40_000, &mut rng);
        let trace = c.component_trace(0);
        let mean = stats::mean(&trace);
        let sd = stats::variance(&trace).sqrt();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((sd - 0.8).abs() < 0.05, "sd {sd}");
    }

    #[test]
    fn qoi_trace_matches_identity_default() {
        let mut c = make_chain(0, 1);
        let mut rng = StdRng::seed_from_u64(4);
        c.run(100, &mut rng);
        assert_eq!(c.samples(), c.qois());
    }

    #[test]
    fn acceptance_rate_in_sane_band() {
        let mut c = make_chain(0, 1);
        let mut rng = StdRng::seed_from_u64(5);
        c.run(5000, &mut rng);
        let r = c.acceptance_rate();
        assert!(r > 0.2 && r < 0.9, "rate {r}");
    }
}
