//! Chain statistics: autocorrelation, integrated autocorrelation time
//! (IACT, the `τ_l` column of the paper's Tables 3–4), effective sample
//! size, and mergeable streaming moments for the distributed collectors.

pub use uq_linalg::vector::{mean, variance};

/// Normalized autocorrelation `ρ_t` of a scalar chain at lag `t`.
///
/// Returns 0 when the chain has (numerically) zero variance.
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    let n = xs.len();
    if lag >= n {
        return 0.0;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom <= 1e-300 {
        return 0.0;
    }
    let num: f64 = (0..n - lag).map(|i| (xs[i] - m) * (xs[i + lag] - m)).sum();
    num / denom
}

/// Integrated autocorrelation time `τ = 1 + 2 Σ_t ρ_t` with Sokal's
/// adaptive windowing: the sum is truncated at the smallest `W` with
/// `W ≥ c·τ(W)` (here `c = 6`), which balances truncation bias against
/// estimator noise.
///
/// An iid chain gives `τ ≈ 1`; the paper reports `τ` per level in Table 3
/// and notes it is "essentially reduced to one" on fine levels.
pub fn integrated_autocorrelation_time(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 4 {
        return 1.0;
    }
    const C: f64 = 6.0;
    let max_lag = n / 2;
    let mut tau = 1.0;
    let mut w = 1;
    while w < max_lag {
        tau += 2.0 * autocorrelation(xs, w);
        if (w as f64) >= C * tau {
            break;
        }
        w += 1;
    }
    tau.max(1.0)
}

/// Effective sample size `n / τ`.
pub fn effective_sample_size(xs: &[f64]) -> f64 {
    xs.len() as f64 / integrated_autocorrelation_time(xs)
}

/// Monte Carlo standard error of the chain mean, `√(τ · var / n)`.
pub fn mcmc_standard_error(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::INFINITY;
    }
    let tau = integrated_autocorrelation_time(xs);
    (tau * variance(xs) / xs.len() as f64).sqrt()
}

/// Streaming mean/variance via Welford's algorithm, mergeable across
/// workers (Chan et al. pairwise combination) — the statistic the paper's
/// `DistributedCollection` maintains per telescoping-sum term.
#[derive(Clone, Debug, Default)]
pub struct RunningMoments {
    count: usize,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }

    pub fn count(&self) -> usize {
        self.count
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The raw accumulator words `(count, mean, m2)`, for checkpointing.
    /// Unlike reconstructing from [`RunningMoments::variance`], feeding
    /// them back through [`RunningMoments::from_parts`] restores the
    /// accumulator bit-for-bit, so a resumed run pushes into exactly the
    /// state the interrupted run left behind.
    pub fn parts(&self) -> (usize, f64, f64) {
        (self.count, self.mean, self.m2)
    }

    /// Rebuild an accumulator from [`RunningMoments::parts`].
    pub fn from_parts(count: usize, mean: f64, m2: f64) -> Self {
        Self { count, mean, m2 }
    }
}

/// Vector-valued [`RunningMoments`] for multi-component QOIs.
#[derive(Clone, Debug)]
pub struct VectorMoments {
    components: Vec<RunningMoments>,
}

impl VectorMoments {
    pub fn new(dim: usize) -> Self {
        Self {
            components: vec![RunningMoments::new(); dim],
        }
    }

    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// Absorb one vector observation.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn push(&mut self, x: &[f64]) {
        assert_eq!(
            x.len(),
            self.components.len(),
            "VectorMoments: dimension mismatch"
        );
        for (c, xi) in self.components.iter_mut().zip(x) {
            c.push(*xi);
        }
    }

    pub fn merge(&mut self, other: &VectorMoments) {
        assert_eq!(self.dim(), other.dim(), "VectorMoments: dimension mismatch");
        for (a, b) in self.components.iter_mut().zip(&other.components) {
            a.merge(b);
        }
    }

    pub fn count(&self) -> usize {
        self.components.first().map_or(0, RunningMoments::count)
    }

    pub fn mean(&self) -> Vec<f64> {
        self.components.iter().map(RunningMoments::mean).collect()
    }

    pub fn variance(&self) -> Vec<f64> {
        self.components
            .iter()
            .map(RunningMoments::variance)
            .collect()
    }

    /// Per-component `(count, mean, m2)` words (see
    /// [`RunningMoments::parts`]).
    pub fn parts(&self) -> Vec<(usize, f64, f64)> {
        self.components.iter().map(RunningMoments::parts).collect()
    }

    /// Rebuild from [`VectorMoments::parts`].
    pub fn from_parts(parts: &[(usize, f64, f64)]) -> Self {
        Self {
            components: parts
                .iter()
                .map(|&(c, m, m2)| RunningMoments::from_parts(c, m, m2))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uq_linalg::prob::standard_normal;

    /// AR(1) process with autocorrelation `rho`; IACT = (1+ρ)/(1-ρ).
    fn ar1(rho: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut x = 0.0;
        let innov_sd = (1.0 - rho * rho).sqrt();
        for _ in 0..n {
            x = rho * x + innov_sd * standard_normal(&mut rng);
            xs.push(x);
        }
        xs
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let xs = ar1(0.5, 1000, 1);
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_of_ar1_decays_geometrically() {
        let xs = ar1(0.7, 200_000, 2);
        for lag in 1..5 {
            let expect = 0.7f64.powi(lag as i32);
            let got = autocorrelation(&xs, lag);
            assert!((got - expect).abs() < 0.02, "lag {lag}: {got} vs {expect}");
        }
    }

    #[test]
    fn iact_of_iid_is_one() {
        let xs = ar1(0.0, 100_000, 3);
        let tau = integrated_autocorrelation_time(&xs);
        assert!((tau - 1.0).abs() < 0.1, "tau {tau}");
    }

    #[test]
    fn iact_of_ar1_matches_theory() {
        for rho in [0.5, 0.8] {
            let xs = ar1(rho, 400_000, 4);
            let tau = integrated_autocorrelation_time(&xs);
            let expect = (1.0 + rho) / (1.0 - rho);
            assert!(
                (tau - expect).abs() / expect < 0.15,
                "rho {rho}: tau {tau} vs {expect}"
            );
        }
    }

    #[test]
    fn ess_scales_inverse_to_iact() {
        let xs = ar1(0.8, 100_000, 5);
        let ess = effective_sample_size(&xs);
        let expect = 100_000.0 / 9.0; // tau = 1.8/0.2 = 9
        assert!((ess - expect).abs() / expect < 0.25, "ess {ess}");
    }

    #[test]
    fn constant_chain_has_unit_iact() {
        let xs = vec![2.0; 100];
        assert_eq!(integrated_autocorrelation_time(&xs), 1.0);
    }

    #[test]
    fn running_moments_match_batch() {
        let xs = ar1(0.3, 5000, 6);
        let mut rm = RunningMoments::new();
        for &x in &xs {
            rm.push(x);
        }
        assert_eq!(rm.count(), 5000);
        assert!((rm.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rm.variance() - variance(&xs)).abs() < 1e-10);
    }

    #[test]
    fn merged_moments_match_single_pass() {
        let xs = ar1(0.3, 3000, 7);
        let (a, b) = xs.split_at(1200);
        let mut ra = RunningMoments::new();
        let mut rb = RunningMoments::new();
        a.iter().for_each(|&x| ra.push(x));
        b.iter().for_each(|&x| rb.push(x));
        ra.merge(&rb);
        assert_eq!(ra.count(), 3000);
        assert!((ra.mean() - mean(&xs)).abs() < 1e-12);
        assert!((ra.variance() - variance(&xs)).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningMoments::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&RunningMoments::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
        let mut empty = RunningMoments::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn vector_moments_componentwise() {
        let mut vm = VectorMoments::new(2);
        vm.push(&[1.0, 10.0]);
        vm.push(&[3.0, 30.0]);
        assert_eq!(vm.count(), 2);
        assert_eq!(vm.mean(), vec![2.0, 20.0]);
        assert_eq!(vm.variance(), vec![2.0, 200.0]);
    }

    #[test]
    fn parts_roundtrip_is_bit_exact() {
        let xs = ar1(0.4, 777, 11);
        let mut rm = RunningMoments::new();
        let mut vm = VectorMoments::new(2);
        for &x in &xs {
            rm.push(x);
            vm.push(&[x, 2.0 * x]);
        }
        let (c, m, m2) = rm.parts();
        let back = RunningMoments::from_parts(c, m, m2);
        assert_eq!(back.count(), rm.count());
        assert_eq!(back.mean().to_bits(), rm.mean().to_bits());
        assert_eq!(back.variance().to_bits(), rm.variance().to_bits());
        let vback = VectorMoments::from_parts(&vm.parts());
        assert_eq!(vback.mean(), vm.mean());
        assert_eq!(vback.variance(), vm.variance());
        // and pushing after the round-trip continues the same stream
        let mut a = rm.clone();
        let mut b = back;
        a.push(0.123);
        b.push(0.123);
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.variance().to_bits(), b.variance().to_bits());
    }

    #[test]
    fn mcmc_se_larger_for_correlated_chains() {
        let iid = ar1(0.0, 50_000, 8);
        let corr = ar1(0.9, 50_000, 9);
        assert!(mcmc_standard_error(&corr) > 2.0 * mcmc_standard_error(&iid));
    }
}

/// Split-chain Gelman–Rubin potential scale reduction factor `R̂`.
///
/// Each chain is split in half (detecting within-chain drift as well as
/// between-chain disagreement); values near 1 indicate convergence, and
/// the conventional threshold is `R̂ < 1.01–1.1`. This is the diagnostic
/// to run on the per-controller chains of a parallel MLMCMC run before
/// trusting the combined telescoping estimate.
///
/// Returns `f64::INFINITY` when there is not enough data (fewer than two
/// resulting half-chains or fewer than four samples per half).
pub fn gelman_rubin(chains: &[Vec<f64>]) -> f64 {
    // split each chain in half
    let mut halves: Vec<&[f64]> = Vec::with_capacity(chains.len() * 2);
    for c in chains {
        if c.len() >= 8 {
            let (a, b) = c.split_at(c.len() / 2);
            halves.push(a);
            halves.push(b);
        }
    }
    let m = halves.len();
    if m < 2 {
        return f64::INFINITY;
    }
    let n = halves.iter().map(|h| h.len()).min().unwrap();
    if n < 4 {
        return f64::INFINITY;
    }
    let chain_means: Vec<f64> = halves.iter().map(|h| mean(&h[..n])).collect();
    let grand_mean = mean(&chain_means);
    // between-chain variance B/n and within-chain variance W
    let b_over_n: f64 = chain_means
        .iter()
        .map(|cm| (cm - grand_mean) * (cm - grand_mean))
        .sum::<f64>()
        / (m - 1) as f64;
    let w: f64 = halves.iter().map(|h| variance(&h[..n])).sum::<f64>() / m as f64;
    if w <= 1e-300 {
        return if b_over_n <= 1e-300 {
            1.0
        } else {
            f64::INFINITY
        };
    }
    let var_plus = (n - 1) as f64 / n as f64 * w + b_over_n;
    (var_plus / w).sqrt()
}

#[cfg(test)]
mod gelman_rubin_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uq_linalg::prob::standard_normal;

    fn iid_chain(mean: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| mean + standard_normal(&mut rng)).collect()
    }

    #[test]
    fn converged_chains_have_rhat_near_one() {
        let chains: Vec<Vec<f64>> = (0..4).map(|k| iid_chain(0.0, 5000, k)).collect();
        let r = gelman_rubin(&chains);
        assert!((r - 1.0).abs() < 0.01, "R-hat {r}");
    }

    #[test]
    fn disagreeing_chains_have_large_rhat() {
        let chains = vec![iid_chain(0.0, 2000, 1), iid_chain(5.0, 2000, 2)];
        let r = gelman_rubin(&chains);
        assert!(r > 1.5, "R-hat {r} should flag disagreement");
    }

    #[test]
    fn drifting_chain_is_flagged_by_splitting() {
        // a single chain with strong drift: split halves disagree
        let mut rng = StdRng::seed_from_u64(3);
        let chain: Vec<f64> = (0..4000)
            .map(|i| i as f64 / 400.0 + standard_normal(&mut rng))
            .collect();
        let r = gelman_rubin(&[chain]);
        assert!(r > 1.5, "R-hat {r} should flag drift");
    }

    #[test]
    fn insufficient_data_returns_infinity() {
        assert_eq!(gelman_rubin(&[]), f64::INFINITY);
        assert_eq!(gelman_rubin(&[vec![1.0, 2.0, 3.0]]), f64::INFINITY);
    }

    #[test]
    fn constant_chains_are_converged() {
        let chains = vec![vec![2.0; 100], vec![2.0; 100]];
        assert_eq!(gelman_rubin(&chains), 1.0);
    }
}
