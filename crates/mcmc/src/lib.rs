//! # uq-mcmc
//!
//! Single-chain Markov chain Monte Carlo building blocks, mirroring the MUQ
//! sampling stack the paper builds on:
//!
//! * [`problem::SamplingProblem`] — the model-agnostic interface
//!   (`LogDensity` + optional quantity of interest), the Rust analogue of
//!   MUQ's `AbstractSamplingProblem` (paper Fig. 6);
//! * [`proposal`] — Gaussian random walk, preconditioned Crank–Nicolson,
//!   Haario-style Adaptive Metropolis (used on the tsunami's coarsest
//!   level), and independence proposals;
//! * [`kernel`] — the Metropolis–Hastings transition kernel (paper Alg. 1);
//! * [`chain`] — a `SingleChainMCMC` driver with burn-in/thinning and
//!   acceptance accounting;
//! * [`stats`] — integrated autocorrelation time (Sokal windowing),
//!   effective sample size and mergeable streaming moments used by the
//!   distributed collectors.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod chain;
pub mod kernel;
pub mod problem;
pub mod proposal;
pub mod stats;

pub use chain::{Chain, ChainConfig};
pub use kernel::{mh_step, SamplingState};
pub use problem::SamplingProblem;
pub use proposal::{
    AdaptiveMetropolis, GaussianRandomWalk, IndependenceProposal, PcnProposal, Proposal,
};
