//! Metropolis–Hastings proposal distributions.
//!
//! All proposals are object-safe (`&mut dyn rand::Rng`) so the multilevel
//! machinery can assemble per-level proposal stacks at run time, exactly
//! like MUQ's `MCMCProposal` hierarchy.

use rand::Rng;
use uq_linalg::dense::DenseMatrix;
use uq_linalg::prob::{standard_normal_vec, MultivariateNormal};

/// A Metropolis–Hastings proposal `q(θ' | θ)`.
pub trait Proposal: Send {
    /// Draw `θ' ~ q(· | current)`.
    fn propose(&mut self, current: &[f64], rng: &mut dyn Rng) -> Vec<f64>;

    /// `log q(to | from)`. Only called when [`Proposal::is_symmetric`]
    /// returns `false`; symmetric proposals may return `0.0`.
    fn log_density(&self, from: &[f64], to: &[f64]) -> f64;

    /// Whether `q(a|b) = q(b|a)` for all `a, b` (lets the kernel skip the
    /// correction term).
    fn is_symmetric(&self) -> bool {
        false
    }

    /// Adaptation hook called by the kernel after every step with the new
    /// chain state. Default: no adaptation.
    fn adapt(&mut self, _state: &[f64], _accepted: bool) {}
}

/// Isotropic Gaussian random walk `θ' = θ + σ ξ`.
#[derive(Clone, Debug)]
pub struct GaussianRandomWalk {
    sd: f64,
}

impl GaussianRandomWalk {
    pub fn new(sd: f64) -> Self {
        assert!(sd > 0.0, "GaussianRandomWalk: sd must be positive");
        Self { sd }
    }

    pub fn sd(&self) -> f64 {
        self.sd
    }
}

impl Proposal for GaussianRandomWalk {
    fn propose(&mut self, current: &[f64], rng: &mut dyn Rng) -> Vec<f64> {
        let xi = standard_normal_vec(rng, current.len());
        current
            .iter()
            .zip(&xi)
            .map(|(c, x)| c + self.sd * x)
            .collect()
    }

    fn log_density(&self, from: &[f64], to: &[f64]) -> f64 {
        uq_linalg::prob::isotropic_gaussian_logpdf(to, from, self.sd)
    }

    fn is_symmetric(&self) -> bool {
        true
    }
}

/// Independence proposal: `θ' ~ N(mean, Σ)` regardless of the current
/// state. The paper uses an isotropic variant (`N(0, 3I)`) on the Poisson
/// model's coarsest level.
pub struct IndependenceProposal {
    dist: MultivariateNormal,
}

impl IndependenceProposal {
    pub fn new(dist: MultivariateNormal) -> Self {
        Self { dist }
    }

    pub fn isotropic(mean: Vec<f64>, sd: f64) -> Self {
        Self {
            dist: MultivariateNormal::isotropic(mean, sd),
        }
    }
}

impl Proposal for IndependenceProposal {
    fn propose(&mut self, _current: &[f64], rng: &mut dyn Rng) -> Vec<f64> {
        self.dist.sample(rng)
    }

    fn log_density(&self, _from: &[f64], to: &[f64]) -> f64 {
        self.dist.logpdf(to)
    }
}

/// Preconditioned Crank–Nicolson proposal for a Gaussian prior
/// `N(prior_mean, prior_sd² I)`:
///
/// `θ' = m + √(1-β²) (θ - m) + β σ ξ`.
///
/// Dimension-robust for function-space priors (Cotter et al. 2013).
#[derive(Clone, Debug)]
pub struct PcnProposal {
    beta: f64,
    prior_mean: Vec<f64>,
    prior_sd: f64,
}

impl PcnProposal {
    pub fn new(beta: f64, prior_mean: Vec<f64>, prior_sd: f64) -> Self {
        assert!(
            beta > 0.0 && beta <= 1.0,
            "PcnProposal: beta must be in (0,1]"
        );
        assert!(prior_sd > 0.0, "PcnProposal: prior sd must be positive");
        Self {
            beta,
            prior_mean,
            prior_sd,
        }
    }

    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Proposal for PcnProposal {
    fn propose(&mut self, current: &[f64], rng: &mut dyn Rng) -> Vec<f64> {
        let contraction = (1.0 - self.beta * self.beta).sqrt();
        let xi = standard_normal_vec(rng, current.len());
        current
            .iter()
            .zip(&self.prior_mean)
            .zip(&xi)
            .map(|((c, m), x)| m + contraction * (c - m) + self.beta * self.prior_sd * x)
            .collect()
    }

    fn log_density(&self, from: &[f64], to: &[f64]) -> f64 {
        let contraction = (1.0 - self.beta * self.beta).sqrt();
        let mean: Vec<f64> = from
            .iter()
            .zip(&self.prior_mean)
            .map(|(f, m)| m + contraction * (f - m))
            .collect();
        uq_linalg::prob::isotropic_gaussian_logpdf(to, &mean, self.beta * self.prior_sd)
    }
}

/// Haario-style Adaptive Metropolis (Haario, Saksman & Tamminen 2001).
///
/// The proposal is a Gaussian random walk whose covariance tracks the
/// sample covariance of the chain history, scaled by `s_d = 2.38²/d`, with
/// an `ε I` regularization. The covariance (and its Cholesky factor) is
/// refreshed every `update_interval` steps — the paper adapts every 100
/// steps on the tsunami's coarsest level, starting from `N(0, 10 I)`.
pub struct AdaptiveMetropolis {
    dim: usize,
    initial_sd: f64,
    epsilon: f64,
    update_interval: usize,
    /// Welford running moments of the chain history.
    count: usize,
    mean: Vec<f64>,
    /// Upper accumulation of Σ (i,j) co-moments, row-major `dim × dim`.
    comoment: Vec<f64>,
    /// Current proposal Cholesky factor (None until first adaptation).
    chol: Option<DenseMatrix>,
    steps_since_update: usize,
    adaptation_started: bool,
}

impl AdaptiveMetropolis {
    pub fn new(dim: usize, initial_sd: f64, update_interval: usize) -> Self {
        assert!(dim > 0 && initial_sd > 0.0 && update_interval > 0);
        Self {
            dim,
            initial_sd,
            epsilon: 1e-6,
            update_interval,
            count: 0,
            mean: vec![0.0; dim],
            comoment: vec![0.0; dim * dim],
            chol: None,
            steps_since_update: 0,
            adaptation_started: false,
        }
    }

    /// Number of chain states absorbed so far.
    pub fn history_len(&self) -> usize {
        self.count
    }

    /// Whether the empirical covariance has replaced the initial proposal.
    pub fn is_adapted(&self) -> bool {
        self.adaptation_started
    }

    fn refresh_cholesky(&mut self) {
        if self.count < 2 * self.dim {
            // too little history for a stable covariance estimate
            return;
        }
        let sd_scale = 2.38 * 2.38 / self.dim as f64;
        let denom = (self.count - 1) as f64;
        let cov = DenseMatrix::from_fn(self.dim, self.dim, |i, j| {
            let c = self.comoment[i * self.dim + j] / denom;
            sd_scale * (c + if i == j { self.epsilon } else { 0.0 })
        });
        if let Some(l) = cov.cholesky() {
            self.chol = Some(l);
            self.adaptation_started = true;
        }
    }
}

impl Proposal for AdaptiveMetropolis {
    fn propose(&mut self, current: &[f64], rng: &mut dyn Rng) -> Vec<f64> {
        let xi = standard_normal_vec(rng, self.dim);
        match &self.chol {
            None => current
                .iter()
                .zip(&xi)
                .map(|(c, x)| c + self.initial_sd * x)
                .collect(),
            Some(l) => {
                let mut out = current.to_vec();
                for i in 0..self.dim {
                    for j in 0..=i {
                        out[i] += l[(i, j)] * xi[j];
                    }
                }
                out
            }
        }
    }

    fn log_density(&self, _from: &[f64], _to: &[f64]) -> f64 {
        0.0 // symmetric — never consulted
    }

    fn is_symmetric(&self) -> bool {
        true
    }

    fn adapt(&mut self, state: &[f64], _accepted: bool) {
        // Welford update of mean and co-moments
        self.count += 1;
        let n = self.count as f64;
        let delta: Vec<f64> = state.iter().zip(&self.mean).map(|(s, m)| s - m).collect();
        for (m, d) in self.mean.iter_mut().zip(&delta) {
            *m += d / n;
        }
        let delta2: Vec<f64> = state.iter().zip(&self.mean).map(|(s, m)| s - m).collect();
        for i in 0..self.dim {
            for j in 0..self.dim {
                self.comoment[i * self.dim + j] += delta[i] * delta2[j];
            }
        }
        self.steps_since_update += 1;
        if self.steps_since_update >= self.update_interval {
            self.steps_since_update = 0;
            self.refresh_cholesky();
        }
    }
}

impl Proposal for Box<dyn Proposal> {
    fn propose(&mut self, current: &[f64], rng: &mut dyn Rng) -> Vec<f64> {
        self.as_mut().propose(current, rng)
    }
    fn log_density(&self, from: &[f64], to: &[f64]) -> f64 {
        self.as_ref().log_density(from, to)
    }
    fn is_symmetric(&self) -> bool {
        self.as_ref().is_symmetric()
    }
    fn adapt(&mut self, state: &[f64], accepted: bool) {
        self.as_mut().adapt(state, accepted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rw_proposal_centered_on_current() {
        let mut p = GaussianRandomWalk::new(0.1);
        let mut rng = StdRng::seed_from_u64(1);
        let cur = vec![5.0, -3.0];
        let n = 20_000;
        let mut mean = [0.0; 2];
        for _ in 0..n {
            let s = p.propose(&cur, &mut rng);
            mean[0] += s[0];
            mean[1] += s[1];
        }
        assert!((mean[0] / n as f64 - 5.0).abs() < 0.01);
        assert!((mean[1] / n as f64 + 3.0).abs() < 0.01);
    }

    #[test]
    fn rw_density_symmetric() {
        let p = GaussianRandomWalk::new(0.5);
        let a = [0.0, 1.0];
        let b = [0.3, 0.7];
        assert!((p.log_density(&a, &b) - p.log_density(&b, &a)).abs() < 1e-13);
        assert!(p.is_symmetric());
    }

    #[test]
    fn independence_ignores_current() {
        let mut p = IndependenceProposal::isotropic(vec![1.0], 2.0);
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let s1 = p.propose(&[100.0], &mut rng1);
        let s2 = p.propose(&[-100.0], &mut rng2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn pcn_preserves_prior() {
        // pCN with the prior as target must accept everything; here we just
        // check the stationary marginals: iterating the proposal alone keeps
        // samples prior-distributed.
        let mut p = PcnProposal::new(0.3, vec![0.0], 1.5);
        let mut rng = StdRng::seed_from_u64(11);
        let mut x = vec![0.0];
        let mut acc = 0.0;
        let mut acc2 = 0.0;
        let n = 50_000;
        for _ in 0..n {
            x = p.propose(&x, &mut rng);
            acc += x[0];
            acc2 += x[0] * x[0];
        }
        let mean = acc / n as f64;
        let var = acc2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.08, "mean {mean}");
        assert!((var - 2.25).abs() < 0.2, "var {var}");
    }

    #[test]
    fn pcn_log_density_matches_formula() {
        let p = PcnProposal::new(0.5, vec![0.0], 1.0);
        let from = [1.0];
        let to = [0.9];
        let contraction = (1.0f64 - 0.25).sqrt();
        let expect = uq_linalg::prob::normal_logpdf(0.9, contraction * 1.0, 0.5);
        assert!((p.log_density(&from, &to) - expect).abs() < 1e-12);
    }

    #[test]
    fn am_starts_with_initial_sd() {
        let mut p = AdaptiveMetropolis::new(2, 0.25, 100);
        assert!(!p.is_adapted());
        let mut rng = StdRng::seed_from_u64(3);
        let s = p.propose(&[0.0, 0.0], &mut rng);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn am_adapts_to_history_covariance() {
        let mut p = AdaptiveMetropolis::new(2, 1.0, 50);
        let mut rng = StdRng::seed_from_u64(4);
        // feed a strongly anisotropic history: x ~ N(0, 9), y ~ N(0, 0.01)
        for _ in 0..500 {
            let x = 3.0 * uq_linalg::prob::standard_normal(&mut rng);
            let y = 0.1 * uq_linalg::prob::standard_normal(&mut rng);
            p.adapt(&[x, y], true);
        }
        assert!(p.is_adapted());
        // proposal spread should now reflect the anisotropy
        let n = 4000;
        let (mut vx, mut vy) = (0.0, 0.0);
        for _ in 0..n {
            let s = p.propose(&[0.0, 0.0], &mut rng);
            vx += s[0] * s[0];
            vy += s[1] * s[1];
        }
        vx /= n as f64;
        vy /= n as f64;
        assert!(
            vx > 20.0 * vy,
            "proposal should be anisotropic: vx = {vx}, vy = {vy}"
        );
    }

    #[test]
    fn am_welford_mean_is_exact() {
        let mut p = AdaptiveMetropolis::new(1, 1.0, 10);
        for i in 1..=5 {
            p.adapt(&[i as f64], true);
        }
        assert_eq!(p.history_len(), 5);
        assert!((p.mean[0] - 3.0).abs() < 1e-12);
        // co-moment accumulates (n-1) * var = 10
        assert!((p.comoment[0] - 10.0).abs() < 1e-12);
    }
}
