//! The Metropolis–Hastings transition kernel (paper Algorithm 1).

use crate::problem::SamplingProblem;
use crate::proposal::Proposal;
use rand::{Rng, RngExt};

/// A point on the chain together with its cached log-density and QOI —
/// the analogue of MUQ's `SamplingState`.
#[derive(Clone, Debug)]
pub struct SamplingState {
    pub theta: Vec<f64>,
    pub log_density: f64,
    /// QOI evaluated lazily on acceptance; rejected steps inherit the
    /// previous state's QOI without re-evaluating the model.
    pub qoi: Vec<f64>,
}

impl SamplingState {
    /// Evaluate the problem at `theta` to build an initial state.
    pub fn initial<P: SamplingProblem + ?Sized>(problem: &mut P, theta: Vec<f64>) -> Self {
        let log_density = problem.log_density(&theta);
        let qoi = problem.qoi(&theta);
        Self {
            theta,
            log_density,
            qoi,
        }
    }
}

/// One Metropolis–Hastings step: propose, compute
/// `α = min(1, ν(θ')q(θ|θ') / ν(θ)q(θ'|θ))`, accept or reject.
///
/// Returns the new state and whether the proposal was accepted. A proposal
/// with `log ν = -∞` (unphysical parameters) is always rejected.
pub fn mh_step<P, Q>(
    problem: &mut P,
    proposal: &mut Q,
    current: &SamplingState,
    rng: &mut dyn Rng,
) -> (SamplingState, bool)
where
    P: SamplingProblem + ?Sized,
    Q: Proposal + ?Sized,
{
    let cand = proposal.propose(&current.theta, rng);
    let cand_log_density = problem.log_density(&cand);
    let accepted = if cand_log_density == f64::NEG_INFINITY {
        false
    } else {
        let mut log_alpha = cand_log_density - current.log_density;
        if !proposal.is_symmetric() {
            log_alpha += proposal.log_density(&cand, &current.theta)
                - proposal.log_density(&current.theta, &cand);
        }
        log_alpha >= 0.0 || rng.random::<f64>().ln() < log_alpha
    };
    let state = if accepted {
        let qoi = problem.qoi(&cand);
        SamplingState {
            theta: cand,
            log_density: cand_log_density,
            qoi,
        }
    } else {
        current.clone()
    };
    proposal.adapt(&state.theta, accepted);
    (state, accepted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::GaussianTarget;
    use crate::proposal::GaussianRandomWalk;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn initial_state_caches_density_and_qoi() {
        let mut p = GaussianTarget::standard(2);
        let s = SamplingState::initial(&mut p, vec![0.5, -0.5]);
        assert_eq!(s.qoi, vec![0.5, -0.5]);
        assert!((s.log_density - p.log_density(&[0.5, -0.5])).abs() < 1e-14);
    }

    #[test]
    fn rejected_step_keeps_state() {
        // an impossible target: only the initial point has mass
        struct Dirac;
        impl SamplingProblem for Dirac {
            fn dim(&self) -> usize {
                1
            }
            fn log_density(&mut self, theta: &[f64]) -> f64 {
                if theta[0] == 0.0 {
                    0.0
                } else {
                    f64::NEG_INFINITY
                }
            }
        }
        let mut p = Dirac;
        let mut q = GaussianRandomWalk::new(1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let init = SamplingState::initial(&mut p, vec![0.0]);
        for _ in 0..50 {
            let (s, acc) = mh_step(&mut p, &mut q, &init, &mut rng);
            assert!(!acc);
            assert_eq!(s.theta, vec![0.0]);
        }
    }

    #[test]
    fn chain_of_steps_targets_gaussian() {
        let mut p = GaussianTarget::new(vec![2.0], 1.0);
        let mut q = GaussianRandomWalk::new(1.5);
        let mut rng = StdRng::seed_from_u64(123);
        let mut state = SamplingState::initial(&mut p, vec![0.0]);
        let mut acc_count = 0usize;
        let n = 60_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let (s, acc) = mh_step(&mut p, &mut q, &state, &mut rng);
            state = s;
            acc_count += acc as usize;
            sum += state.theta[0];
            sum2 += state.theta[0] * state.theta[0];
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
        let rate = acc_count as f64 / n as f64;
        assert!(rate > 0.2 && rate < 0.8, "acceptance rate {rate}");
    }

    #[test]
    fn asymmetric_proposal_correction_preserves_target() {
        // independence proposal with *wrong* center still targets N(0,1)
        // thanks to the Hastings correction
        use crate::proposal::IndependenceProposal;
        let mut p = GaussianTarget::standard(1);
        let mut q = IndependenceProposal::isotropic(vec![1.0], 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut state = SamplingState::initial(&mut p, vec![0.0]);
        let n = 80_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let (s, _) = mh_step(&mut p, &mut q, &state, &mut rng);
            state = s;
            sum += state.theta[0];
            sum2 += state.theta[0] * state.theta[0];
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }
}
